//! Table I — numbers of matches of the core motifs (triangle Δ, 4-clique
//! ⊠, chordal square) in the five data graphs.
//!
//! ```text
//! cargo run --release -p benu-bench --bin table1 -- [--scale 0.2] [--json out.json]
//! ```

use benu_bench::cli::Args;
use benu_bench::impl_to_json;
use benu_bench::{load_dataset, print_table};
use benu_graph::datasets::Dataset;
use benu_graph::stats;
use benu_pattern::queries;
use benu_plan::PlanBuilder;

struct Row {
    dataset: String,
    vertices: usize,
    edges: usize,
    triangles: u64,
    cliques4: u64,
    chordal_squares: u64,
}

impl_to_json!(Row {
    dataset,
    vertices,
    edges,
    triangles,
    cliques4,
    chordal_squares
});

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 0.2);

    let motifs = [
        ("triangle", queries::triangle()),
        ("clique4", queries::clique(4)),
        ("chordal_square", queries::chordal_square()),
    ];

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for dataset in Dataset::ALL {
        let g = load_dataset(dataset, scale);
        let mut counts = Vec::new();
        for (_, motif) in &motifs {
            let plan = PlanBuilder::new(motif)
                .graph_stats(g.num_vertices(), g.num_edges())
                .compressed(true)
                .best_plan();
            counts.push(benu_engine::count_embeddings(&plan, &g));
        }
        // Independent cross-check of the triangle column.
        assert_eq!(
            counts[0],
            stats::count_triangles(&g),
            "triangle counters disagree"
        );
        records.push(Row {
            dataset: dataset.abbrev().to_string(),
            vertices: g.num_vertices(),
            edges: g.num_edges(),
            triangles: counts[0],
            cliques4: counts[1],
            chordal_squares: counts[2],
        });
        rows.push(vec![
            dataset.abbrev().to_string(),
            format!("{:.1e}", g.num_vertices() as f64),
            format!("{:.1e}", g.num_edges() as f64),
            format!("{:.1e}", counts[0] as f64),
            format!("{:.1e}", counts[1] as f64),
            format!("{:.1e}", counts[2] as f64),
        ]);
    }

    println!("\nTable I — match counts of core motifs (scale {scale}):");
    print_table(
        &[
            "graph",
            "|V|",
            "|E|",
            "triangle",
            "4-clique",
            "chordal-square",
        ],
        &rows,
    );
    println!(
        "\npaper shape: motif counts dwarf |E| (10–100×); ok/uk are the\n\
         clique-densest, fs is triangle-sparse for its size."
    );
    if let Some(path) = args.get_str("json") {
        let mut report = benu_bench::report::BenchReport::new("table1");
        report.param("scale", scale);
        for r in &records {
            report.push_row(r);
        }
        report.write(path).expect("write json");
    }
}
