//! Exp-2 / Fig. 7 — effect of the execution-plan optimization techniques.
//!
//! Three representative cases are executed with cumulatively more
//! optimizations (Raw → +Opt1 CSE → +Opt2 reorder → +Opt3 triangle
//! cache): (a) uncompressed q2 and (b) uncompressed q4 — where the paper
//! disables compression because it would negate some optimizations — and
//! (c) compressed q1.
//!
//! ```text
//! cargo run --release -p benu-bench --bin fig7_exp2 -- [--scale 0.1] [--dataset lj]
//! ```

use benu_bench::cli::Args;
use benu_bench::impl_to_json;
use benu_bench::{load_dataset, print_table, secs};
use benu_cluster::{Cluster, ClusterConfig};
use benu_graph::datasets::Dataset;
use benu_pattern::queries;
use benu_plan::optimize::OptimizeOptions;
use benu_plan::PlanBuilder;

struct Row {
    case: String,
    stage: String,
    time_s: f64,
    matches: u64,
}

impl_to_json!(Row {
    case,
    stage,
    time_s,
    matches
});

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 0.15);
    let dataset =
        Dataset::from_abbrev(args.get_str("dataset").unwrap_or("lj")).expect("unknown dataset");
    let g = load_dataset(dataset, scale);
    // A single worker thread isolates plan quality from scheduling noise
    // (the ablation measures pure computation, as in the paper's Fig. 7).
    let cluster = Cluster::new(
        &g,
        ClusterConfig::builder()
            .workers(1)
            .threads_per_worker(1)
            .cache_capacity_bytes(64 << 20)
            .build(),
    );

    let stages: [(&str, OptimizeOptions); 4] = [
        ("raw", OptimizeOptions::none()),
        (
            "+opt1",
            OptimizeOptions {
                cse: true,
                reorder: false,
                triangle_cache: false,
                clique_cache: false,
            },
        ),
        (
            "+opt2",
            OptimizeOptions {
                cse: true,
                reorder: true,
                triangle_cache: false,
                clique_cache: false,
            },
        ),
        ("+opt3", OptimizeOptions::all()),
    ];
    let cases = [
        ("(a) q2 uncompressed", queries::q2(), false),
        ("(b) q4 uncompressed", queries::q4(), false),
        ("(c) demo uncompressed", queries::demo_pattern(), false),
        ("(d) q1 compressed", queries::q1(), true),
    ];

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (case, pattern, compressed) in &cases {
        // The matching order is fixed (the paper's running order for the
        // demo pattern, the best order otherwise) so stages differ only
        // in the optimizations applied to it.
        let best_order = if pattern.num_vertices() == 6 && pattern.num_edges() == 9 {
            vec![0, 2, 4, 1, 5, 3]
        } else {
            PlanBuilder::new(pattern)
                .graph_stats(g.num_vertices(), g.num_edges())
                .best_plan()
                .matching_order
        };
        let mut row = vec![case.to_string()];
        let mut reference_count = None;
        for (stage, opts) in &stages {
            let plan = PlanBuilder::new(pattern)
                .matching_order(best_order.clone())
                .optimizations(*opts)
                .compressed(*compressed)
                .build();
            // Fresh cache per stage: the fixture compares plan quality,
            // not run-to-run cache warmth.
            cluster.clear_caches();
            let outcome = cluster.run(&plan).expect("cluster run failed");
            match reference_count {
                None => reference_count = Some(outcome.total_matches),
                Some(c) => assert_eq!(c, outcome.total_matches, "{case}/{stage}: count changed"),
            }
            records.push(Row {
                case: case.to_string(),
                stage: stage.to_string(),
                time_s: outcome.makespan().as_secs_f64(),
                matches: outcome.total_matches,
            });
            row.push(secs(outcome.makespan()));
        }
        rows.push(row);
    }

    println!(
        "\nFig. 7 — execution time with cumulative plan optimizations ({}, scale {scale}):",
        dataset.abbrev()
    );
    print_table(&["case", "raw", "+opt1", "+opt2", "+opt3"], &rows);
    println!(
        "\npaper shape: Opt2 (reordering) helps everywhere; Opt1 helps where a\n\
         common subexpression exists (q4-like cases); Opt3 helps where\n\
         triangles are repeatedly enumerated."
    );
    if let Some(path) = args.get_str("json") {
        let mut report = benu_bench::report::BenchReport::new("fig7_exp2");
        report
            .param("dataset", dataset.abbrev())
            .param("scale", scale);
        for r in &records {
            report.push_row(r);
        }
        report.write(path).expect("write json");
    }
}
