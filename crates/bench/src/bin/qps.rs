//! Serving-layer throughput: queries/sec of [`benu_service::QueryService`]
//! replaying one seeded query mix at several concurrency levels.
//!
//! The mix is a pure function of `--seed`: ~`--queries` submissions drawn
//! from the five bench patterns with count/collect/sample result modes
//! and varied fair-share weights (no truncating budgets, so every
//! query's count has a single right answer). Each concurrency level
//! replays the *same* mix against a fresh service and reports
//! queries/sec plus p50/p99 virtual-time latency — vticks are the
//! deterministic latency measure, identical at every concurrency, so
//! the percentile columns double as a cross-level determinism check.
//!
//! ```text
//! cargo run --release -p benu-bench --bin qps -- \
//!     [--dataset uk] [--scale 0.02] [--seed 7] [--queries 24] \
//!     [--chunk-tasks 16] [--levels 1,4,16] [--fault-rate 0.01] \
//!     [--json BENCH_qps.json]
//! ```
//!
//! The bin self-checks three serving-layer invariants and exits nonzero
//! on violation (the CI `perf-smoke` hook):
//!
//! 1. every query's count equals its solo [`Cluster::run`] count,
//! 2. the plan cache serves repeated patterns (hits > 0),
//! 3. concurrency 16 beats concurrency 1 on queries/sec.
//!
//! With `--fault-rate R > 0` a fourth arm replays the mix at the top
//! concurrency level under a seeded [`benu_service::FaultPlan`]
//! injecting transient faults at rate R, and asserts the resilience
//! smoke contract: zero failed queries (every fault recovered by
//! retry), counts still equal to solo, and throughput within 20% of
//! the faultless arm at the same concurrency.

use benu_bench::cli::Args;
use benu_bench::impl_to_json;
use benu_bench::{load_dataset, print_table};
use benu_cluster::{Cluster, ClusterConfig};
use benu_graph::datasets::Dataset;
use benu_pattern::{queries, Pattern};
use benu_plan::PlanBuilder;
use benu_service::{FaultPlan, QueryOptions, QueryService, ResultMode, ServiceConfig, Terminal};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

const CONCURRENCY: [usize; 3] = [1, 4, 16];

/// `--levels 1,4,16` overrides the default concurrency ladder (the
/// scaling self-check only runs when more than one level is measured).
fn levels(args: &Args) -> Vec<usize> {
    match args.get_str("levels") {
        Some(spec) => spec
            .split(',')
            .map(|s| s.trim().parse().expect("--levels takes a comma list"))
            .collect(),
        None => CONCURRENCY.to_vec(),
    }
}

struct Row {
    concurrency: u64,
    queries: u64,
    wall_s: f64,
    qps: f64,
    p50_vticks: u64,
    p99_vticks: u64,
    plan_cache_hits: u64,
    plan_cache_misses: u64,
    total_matches: u64,
}

impl_to_json!(Row {
    concurrency,
    queries,
    wall_s,
    qps,
    p50_vticks,
    p99_vticks,
    plan_cache_hits,
    plan_cache_misses,
    total_matches
});

/// One submission of the seeded mix.
struct MixEntry {
    pattern_idx: usize,
    options: QueryOptions,
}

/// The five mix patterns, heaviest last so the fair scheduler has real
/// skew to absorb.
fn patterns() -> Vec<(&'static str, Pattern)> {
    vec![
        ("triangle", queries::triangle()),
        ("square", queries::square()),
        ("q1", queries::q1()),
        ("q2", queries::q2()),
        ("clique4", queries::clique(4)),
    ]
}

/// Draws the query mix: a pure function of the seed. Only non-truncating
/// result modes — every query must run to exhaustion so its count has a
/// solo ground truth.
fn draw_mix(seed: u64, n: usize) -> Vec<MixEntry> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let pattern_idx = rng.gen_range(0..patterns().len());
            let mode = match rng.gen_range(0..4u32) {
                0 => ResultMode::Collect,
                1 => ResultMode::Sample {
                    n: 8,
                    seed: rng.gen_range(0..u64::MAX),
                },
                _ => ResultMode::CountOnly,
            };
            let weight = rng.gen_range(1..4u32);
            MixEntry {
                pattern_idx,
                options: QueryOptions::new().mode(mode).weight(weight),
            }
        })
        .collect()
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 0.02);
    let seed: u64 = args.get("seed", 7);
    let n_queries: usize = args.get("queries", 24);
    let chunk_tasks: usize = args.get("chunk-tasks", 16);
    let fault_rate: f64 = args.get("fault-rate", 0.0);
    let dataset =
        Dataset::from_abbrev(args.get_str("dataset").unwrap_or("uk")).expect("unknown dataset");
    let g = load_dataset(dataset, scale);
    let mix = draw_mix(seed, n_queries);
    let named = patterns();

    // Solo ground truth per pattern: one single-query batch cluster run.
    let solo: Vec<u64> = named
        .iter()
        .map(|(_, pattern)| {
            let plan = PlanBuilder::new(pattern).best_plan();
            let cluster = Cluster::new(&g, ClusterConfig::builder().workers(2).build());
            cluster.run(&plan).expect("solo run").total_matches
        })
        .collect();

    let ladder = levels(&args);
    // One unmeasured replay warms the allocator and page cache so the
    // first measured level is not penalised relative to later ones —
    // without this, level ordering masquerades as concurrency scaling.
    {
        let service = QueryService::new(
            &g,
            ServiceConfig::builder()
                .workers(ladder[0])
                .chunk_tasks(chunk_tasks)
                .build(),
        );
        let ids: Vec<_> = mix
            .iter()
            .map(|entry| service.submit(&named[entry.pattern_idx].1, entry.options.clone()))
            .collect();
        for id in ids {
            service.wait(id);
        }
    }
    let mut rows: Vec<Row> = Vec::new();
    let mut table = Vec::new();
    for &workers in &ladder {
        let service = QueryService::new(
            &g,
            ServiceConfig::builder()
                .workers(workers)
                .chunk_tasks(chunk_tasks)
                .build(),
        );
        let start = Instant::now();
        let ids: Vec<_> = mix
            .iter()
            .map(|entry| service.submit(&named[entry.pattern_idx].1, entry.options.clone()))
            .collect();
        let results: Vec<_> = ids.into_iter().map(|id| service.wait(id)).collect();
        let wall = start.elapsed().as_secs_f64();

        for (entry, result) in mix.iter().zip(&results) {
            let (name, _) = &named[entry.pattern_idx];
            assert_eq!(
                result.matches_found,
                solo[entry.pattern_idx],
                "query {} ({name}, {}) at concurrency {workers} diverged from \
                 its solo cluster count",
                result.id,
                entry.options.mode.name(),
            );
            assert!(result.exhaustive, "an unbudgeted query must exhaust");
        }

        let stats = service.plan_cache_stats();
        assert!(
            stats.hits > 0,
            "a {n_queries}-query mix over {} patterns must hit the plan cache",
            named.len()
        );

        let mut vticks: Vec<u64> = results.iter().map(|r| r.vticks).collect();
        vticks.sort_unstable();
        let row = Row {
            concurrency: workers as u64,
            queries: n_queries as u64,
            wall_s: wall,
            qps: benu_obs::safe_ratio(n_queries as f64, wall),
            p50_vticks: percentile(&vticks, 50.0),
            p99_vticks: percentile(&vticks, 99.0),
            plan_cache_hits: stats.hits,
            plan_cache_misses: stats.misses,
            total_matches: results.iter().map(|r| r.matches_found).sum(),
        };
        table.push(vec![
            row.concurrency.to_string(),
            row.queries.to_string(),
            format!("{:.3}s", row.wall_s),
            format!("{:.1}", row.qps),
            row.p50_vticks.to_string(),
            row.p99_vticks.to_string(),
            format!("{}/{}", row.plan_cache_hits, row.plan_cache_misses),
            row.total_matches.to_string(),
        ]);
        rows.push(row);
    }

    // vticks are deterministic, so the latency percentiles must agree
    // across concurrency levels — a cheap end-to-end determinism check.
    for r in &rows[1..] {
        assert_eq!(
            (r.p50_vticks, r.p99_vticks),
            (rows[0].p50_vticks, rows[0].p99_vticks),
            "virtual-time latency changed with concurrency"
        );
    }

    println!(
        "\nServing throughput on {} (scale {scale}, seed {seed}, {n_queries} queries):",
        dataset.abbrev()
    );
    print_table(
        &[
            "workers",
            "queries",
            "wall",
            "qps",
            "p50 vticks",
            "p99 vticks",
            "cache h/m",
            "matches",
        ],
        &table,
    );

    if ladder.len() > 1 {
        let lo = &rows[0];
        let hi = &rows[rows.len() - 1];
        println!(
            "scaling: qps@{} = {:.2}x qps@{}",
            hi.concurrency,
            hi.qps / lo.qps.max(f64::MIN_POSITIVE),
            lo.concurrency
        );
        // The ladder is CPU-bound, so more workers only pay off when the
        // machine can actually run them — on a single hardware thread the
        // strict check would assert on scheduler noise.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores > 1 {
            assert!(
                hi.qps > lo.qps,
                "concurrency {} ({:.1} qps) must beat concurrency {} ({:.1} qps)",
                hi.concurrency,
                hi.qps,
                lo.concurrency,
                lo.qps
            );
        } else {
            println!("scaling gate skipped: single hardware thread");
        }
    }

    let mut faulted_row: Option<Row> = None;
    if fault_rate > 0.0 {
        // Resilience smoke: the same mix at the top concurrency level
        // with seeded transient faults on every store round trip.
        // Recovered faults must be invisible in results AND cheap in
        // wall clock — retries and backoff are virtual-time bookings,
        // not sleeps.
        let workers = *ladder.last().expect("ladder is non-empty");
        let plain = rows.last().expect("ladder measured");
        let service = QueryService::new(
            &g,
            ServiceConfig::builder()
                .workers(workers)
                .chunk_tasks(chunk_tasks)
                .fault_plan(FaultPlan::builder(seed).transient_rate(fault_rate).build())
                .build(),
        );
        let start = Instant::now();
        let ids: Vec<_> = mix
            .iter()
            .map(|entry| service.submit(&named[entry.pattern_idx].1, entry.options.clone()))
            .collect();
        let results: Vec<_> = ids.into_iter().map(|id| service.wait(id)).collect();
        let wall = start.elapsed().as_secs_f64();
        for (entry, result) in mix.iter().zip(&results) {
            assert!(
                matches!(result.terminal, Terminal::Completed),
                "query {} must recover every injected fault at rate {fault_rate}, got {:?}",
                result.id,
                result.terminal
            );
            assert_eq!(
                result.matches_found, solo[entry.pattern_idx],
                "recovered faults must not change query {}'s count",
                result.id
            );
        }
        let qps = benu_obs::safe_ratio(n_queries as f64, wall);
        println!(
            "fault-rate {fault_rate}: {:.1} qps vs {:.1} faultless \
             ({:.0}% of plain), 0 failed",
            qps,
            plain.qps,
            100.0 * qps / plain.qps.max(f64::MIN_POSITIVE)
        );
        assert!(
            qps >= 0.8 * plain.qps,
            "faulted throughput {qps:.1} degraded more than 20% from {:.1}",
            plain.qps
        );
        let mut vticks: Vec<u64> = results.iter().map(|r| r.vticks).collect();
        vticks.sort_unstable();
        faulted_row = Some(Row {
            concurrency: workers as u64,
            queries: n_queries as u64,
            wall_s: wall,
            qps,
            p50_vticks: percentile(&vticks, 50.0),
            p99_vticks: percentile(&vticks, 99.0),
            plan_cache_hits: service.plan_cache_stats().hits,
            plan_cache_misses: service.plan_cache_stats().misses,
            total_matches: results.iter().map(|r| r.matches_found).sum(),
        });
    }

    if let Some(path) = args.get_str("json") {
        let mut report = benu_bench::report::BenchReport::new("qps");
        report
            .param("dataset", dataset.abbrev())
            .param("scale", scale)
            .param("seed", seed)
            .param("queries", n_queries as u64)
            .param("chunk_tasks", chunk_tasks as u64)
            .param("fault_rate", fault_rate);
        if let Some(r) = &faulted_row {
            report.push_row(r);
        }
        for r in &rows {
            report.push_row(r);
        }
        report.write(path).expect("write json");
    }
}
