//! Fig. 10 — machine scalability: execution time and relative speedup of
//! q5 and q9 on the Orkut and FriendSter stand-ins with 1–16 workers.
//!
//! Methodology: per-task durations are measured once on a single
//! dedicated thread (no time-slice dilation), then the cluster's
//! scheduler — round-robin task assignment to workers, greedy pulling by
//! each worker's threads — is simulated for every worker count and the
//! makespan (busiest simulated thread) reported. On a host with at least
//! as many cores as simulated threads this coincides with measured wall
//! time; on smaller hosts it is the only undistorted estimate.
//!
//! ```text
//! cargo run --release -p benu-bench --bin fig10_scal -- [--scale 0.08] [--tau 24]
//! ```

use benu_bench::cli::Args;
use benu_bench::impl_to_json;
use benu_bench::{load_dataset, print_table};
use benu_cluster::{Cluster, ClusterConfig};
use benu_graph::datasets::Dataset;
use benu_pattern::queries;
use benu_plan::PlanBuilder;
use std::collections::BinaryHeap;

struct Record {
    dataset: String,
    query: String,
    workers: usize,
    makespan_s: f64,
    speedup_vs_1: f64,
}

impl_to_json!(Record {
    dataset,
    query,
    workers,
    makespan_s,
    speedup_vs_1
});

/// One arm of the load-balancing A/B: degree-driven `auto_tau` vs
/// observed-cost splitting fed back from the first arm's profile.
struct BalanceRecord {
    dataset: String,
    query: String,
    arm: String,
    workers: usize,
    total_tasks: usize,
    threshold: usize,
    work_imbalance: f64,
    load_imbalance: f64,
}

impl_to_json!(BalanceRecord {
    dataset,
    query,
    arm,
    workers,
    total_tasks,
    threshold,
    work_imbalance,
    load_imbalance
});

/// Simulates the runtime's scheduler: tasks are assigned round-robin to
/// `workers`; within each worker, `threads` threads repeatedly pull the
/// next queued task. Returns the makespan in seconds.
fn simulate_makespan(task_times: &[f64], workers: usize, threads: usize) -> f64 {
    let mut worker_queues: Vec<Vec<f64>> = vec![Vec::new(); workers];
    for (i, &t) in task_times.iter().enumerate() {
        worker_queues[i % workers].push(t);
    }
    let mut makespan = 0.0f64;
    for queue in worker_queues {
        // Min-heap of thread finish times (floats via Reverse of ordered
        // bits).
        let mut heap: BinaryHeap<std::cmp::Reverse<u64>> =
            (0..threads).map(|_| std::cmp::Reverse(0u64)).collect();
        // Fixed-point nanoseconds keep the heap orderable.
        for t in queue {
            let std::cmp::Reverse(free_at) = heap.pop().expect("threads >= 1");
            let finish = free_at + (t * 1e9) as u64;
            heap.push(std::cmp::Reverse(finish));
        }
        let worker_finish = heap
            .into_iter()
            .map(|std::cmp::Reverse(f)| f)
            .max()
            .unwrap_or(0) as f64
            / 1e9;
        makespan = makespan.max(worker_finish);
    }
    makespan
}

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 0.08);
    let max_workers: usize = args.get("max-workers", 16);
    let threads: usize = args.get("threads", 2);
    // Splitting must be fine-grained relative to the mini graphs' hub
    // degrees, or one unsplittable hub task flattens the curve.
    let tau: usize = args.get("tau", 24);
    let worker_counts: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&w| w <= max_workers)
        .collect();

    let dataset_filter = args.get_str("datasets").map(|s| s.to_string());
    let query_filter = args.get_str("queries").map(|s| s.to_string());
    let cases: Vec<(Dataset, &str)> = [
        (Dataset::Orkut, "q5"),
        (Dataset::FriendSter, "q5"),
        (Dataset::Orkut, "q9"),
        (Dataset::FriendSter, "q9"),
    ]
    .into_iter()
    .filter(|(d, q)| {
        dataset_filter
            .as_deref()
            .is_none_or(|f| f.split(',').any(|x| x == d.abbrev()))
            && query_filter
                .as_deref()
                .is_none_or(|f| f.split(',').any(|x| x == *q))
    })
    .collect();

    let mut records = Vec::new();
    for &(dataset, qname) in &cases {
        let g = load_dataset(dataset, scale);
        let pattern = queries::by_name(qname).unwrap();
        let plan = PlanBuilder::new(&pattern)
            .graph_stats(g.num_vertices(), g.num_edges())
            .compressed(true)
            .best_plan();
        // One dedicated-thread measurement run collecting per-task times.
        let cluster = Cluster::new(
            &g,
            ClusterConfig::builder()
                .workers(1)
                .threads_per_worker(1)
                .cache_capacity_bytes(64 << 20)
                .tau(tau)
                .collect_task_times(true)
                .build(),
        );
        let outcome = cluster.run(&plan).expect("cluster run failed");
        let task_times: Vec<f64> = outcome
            .task_times
            .as_ref()
            .expect("collected")
            .iter()
            .map(|d| d.as_secs_f64())
            .collect();

        let mut base = None;
        let mut rows = Vec::new();
        for &workers in &worker_counts {
            let makespan = simulate_makespan(&task_times, workers, threads);
            let base_time = *base.get_or_insert(makespan);
            let record = Record {
                dataset: dataset.abbrev().to_string(),
                query: qname.to_string(),
                workers,
                makespan_s: makespan,
                speedup_vs_1: base_time / makespan.max(1e-12),
            };
            rows.push(vec![
                workers.to_string(),
                format!("{:.3}s", record.makespan_s),
                format!("{:.2}x", record.speedup_vs_1),
            ]);
            records.push(record);
        }
        println!(
            "\nFig. 10 — {qname} on {} (scale {scale}, {} tasks, {} matches):",
            dataset.abbrev(),
            outcome.total_tasks,
            outcome.total_matches
        );
        print_table(&["workers", "makespan", "speedup"], &rows);
    }
    println!(
        "\npaper shape: near-linear speedup with worker count, flattening as\n\
         straggler tasks start to dominate (sub-4x from 4 to 16 workers)."
    );

    // Load-balancing A/B: degree-driven auto_tau vs observed-cost
    // splitting. Pass 1 splits on the degree proxy and records the
    // per-start-vertex cost profile; pass 2 feeds the profile back, so
    // splitting thresholds and LPT placement act on real work.
    // `work_imbalance` (max/mean of per-worker deterministic vticks) is
    // the headline: unlike wall-clock load_imbalance it is byte-stable,
    // so the in-bin regression assert can lean on it.
    let balance_workers: usize = args.get("balance-workers", 4);
    let mut balance_records = Vec::new();
    for (dataset, qname) in &cases {
        let g = load_dataset(*dataset, scale);
        let pattern = queries::by_name(qname).unwrap();
        let plan = PlanBuilder::new(&pattern)
            .graph_stats(g.num_vertices(), g.num_edges())
            .compressed(true)
            .best_plan();
        let config = ClusterConfig::builder()
            .workers(balance_workers)
            .threads_per_worker(1)
            .cache_capacity_bytes(64 << 20)
            .tau_auto(true)
            .collect_cost_profile(true)
            .build();
        let mut cluster = Cluster::new(&g, config);
        let degree_arm = cluster.run(&plan).expect("degree arm failed");
        let profile = degree_arm.cost_profile.clone().expect("profile collected");
        cluster.clear_caches();
        cluster.set_cost_profile(Some(profile));
        let cost_arm = cluster.run(&plan).expect("cost arm failed");
        assert_eq!(
            cost_arm.total_matches, degree_arm.total_matches,
            "splitting policy must not change counts"
        );
        let (dw, cw) = (degree_arm.work_imbalance(), cost_arm.work_imbalance());
        assert!(
            cw <= dw * 1.05 + 1e-9,
            "observed-cost splitting worsened work imbalance on {} {}: {dw:.3} -> {cw:.3}",
            dataset.abbrev(),
            qname
        );
        let mut rows = Vec::new();
        for (arm, o) in [("degree_tau", &degree_arm), ("observed_cost", &cost_arm)] {
            rows.push(vec![
                arm.to_string(),
                o.total_tasks.to_string(),
                o.effective_tau.to_string(),
                format!("{:.3}", o.work_imbalance()),
                format!("{:.3}", o.load_imbalance()),
            ]);
            balance_records.push(BalanceRecord {
                dataset: dataset.abbrev().to_string(),
                query: qname.to_string(),
                arm: arm.to_string(),
                workers: balance_workers,
                total_tasks: o.total_tasks,
                threshold: o.effective_tau,
                work_imbalance: o.work_imbalance(),
                load_imbalance: o.load_imbalance(),
            });
        }
        println!(
            "\nload-balancing A/B — {qname} on {} ({balance_workers} workers):",
            dataset.abbrev()
        );
        print_table(
            &[
                "arm",
                "tasks",
                "tau/theta",
                "work_imbalance",
                "load_imbalance",
            ],
            &rows,
        );
    }

    if let Some(path) = args.get_str("json") {
        let mut report = benu_bench::report::BenchReport::new("fig10_scal");
        report
            .param("scale", scale)
            .param("threads", threads as u64)
            .param("tau", tau as u64)
            .param("max_workers", max_workers as u64);
        for r in &records {
            report.push_row(r);
        }
        for r in &balance_records {
            report.push_row(r);
        }
        report.write(path).expect("write json");
    }
}
