//! Ablation: cardinality-estimator quality — the Erdős–Rényi model the
//! paper inherits from SEED §5.1, the degree-moment (Chung-Lu) model
//! implemented as its pluggable replacement, and the observed-feedback
//! estimator that corrects the Chung-Lu prior with the per-instruction
//! cardinalities recorded while executing a previous plan.
//!
//! For each evaluation query and dataset, compares the predicted match
//! count of all three models against the true count and reports the
//! log10-error and q-error (max(est/truth, truth/est)). The paper
//! explicitly notes the estimation model "can be replaced if a more
//! accurate model is proposed"; this harness quantifies two rounds of
//! replacement. The binary asserts the feedback arm's mean q-error never
//! exceeds the static ER model's — the regression guard CI runs.
//!
//! ```text
//! cargo run --release -p benu-bench --bin estimator_eval -- [--scale 0.05] [--datasets as,lj]
//! ```

use benu_bench::cli::Args;
use benu_bench::impl_to_json;
use benu_bench::{load_dataset, print_table};
use benu_cluster::{Cluster, ClusterConfig};
use benu_graph::datasets::Dataset;
use benu_pattern::queries;
use benu_plan::cost::CardinalityEstimator;
use benu_plan::{ChungLuEstimator, FeedbackEstimator, GraphStatsEstimator, PlanBuilder};

struct Row {
    dataset: String,
    query: String,
    truth: u64,
    er_estimate: f64,
    cl_estimate: f64,
    fb_estimate: f64,
    er_log_error: f64,
    cl_log_error: f64,
    fb_log_error: f64,
    er_q_error: f64,
    cl_q_error: f64,
    fb_q_error: f64,
}

impl_to_json!(Row {
    dataset,
    query,
    truth,
    er_estimate,
    cl_estimate,
    fb_estimate,
    er_log_error,
    cl_log_error,
    fb_log_error,
    er_q_error,
    cl_q_error,
    fb_q_error
});

/// q-error of an estimate: `max(est/truth, truth/est)`, with both sides
/// floored away from zero. 1.0 = exact.
fn q_error(est: f64, truth: f64) -> f64 {
    let (e, t) = (est.max(1e-9), truth.max(1e-9));
    (e / t).max(t / e)
}

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 0.05);
    let dataset_names: Vec<String> = args
        .get_str("datasets")
        .unwrap_or("as,lj,fs")
        .split(',')
        .map(String::from)
        .collect();

    let mut rows = Vec::new();
    let mut records: Vec<Row> = Vec::new();
    let mut wins = (0usize, 0usize, 0usize);
    for dname in &dataset_names {
        let dataset = Dataset::from_abbrev(dname).expect("unknown dataset");
        let g = load_dataset(dataset, scale);
        let er = GraphStatsEstimator::new(g.num_vertices(), g.num_edges());
        let cl = ChungLuEstimator::from_graph(&g);
        // One 1×1 cluster per dataset records the per-instruction
        // cardinalities the feedback arm learns from.
        let cluster = Cluster::new(
            &g,
            ClusterConfig::builder()
                .workers(1)
                .threads_per_worker(1)
                .cache_capacity_bytes(64 << 20)
                .build(),
        );
        for (qname, p) in queries::evaluation_queries() {
            // The observation run uses an *uncompressed* plan: compressed
            // plans drop the final enumeration levels, and with them the
            // slots the feedback estimator reads.
            let plan = PlanBuilder::new(&p)
                .graph_stats(g.num_vertices(), g.num_edges())
                .best_plan();
            let outcome = cluster.run(&plan).expect("cluster run failed");
            let subgraphs = outcome.total_matches;
            let aut = benu_pattern::automorphism::automorphism_count(&p) as u64;
            // Ground truth: ordered maps (`matches × |Aut|`), aligning
            // with the models' ordered-map semantics.
            let truth = subgraphs * aut;
            let fb = FeedbackEstimator::new(
                ChungLuEstimator::from_graph(&g),
                &plan,
                &outcome.metrics.obs,
            );
            let full_mask = (1u64 << p.num_vertices()) - 1;
            let er_est = er.estimate_pattern_subset(&p, full_mask);
            let cl_est = cl.estimate_pattern_subset(&p, full_mask);
            let fb_est = fb.estimate_pattern_subset(&p, full_mask);
            let log_err =
                |est: f64| ((est.max(1e-9)).log10() - (truth.max(1) as f64).log10()).abs();
            let (ee, ce, fe) = (log_err(er_est), log_err(cl_est), log_err(fb_est));
            if fe <= ee && fe <= ce {
                wins.2 += 1;
            } else if ce < ee {
                wins.1 += 1;
            } else {
                wins.0 += 1;
            }
            rows.push(vec![
                dname.clone(),
                qname.to_string(),
                format!("{:.2e}", truth as f64),
                format!("{er_est:.2e}"),
                format!("{cl_est:.2e}"),
                format!("{fb_est:.2e}"),
                format!("{ee:.2}"),
                format!("{ce:.2}"),
                format!("{fe:.2}"),
            ]);
            records.push(Row {
                dataset: dname.clone(),
                query: qname.to_string(),
                truth,
                er_estimate: er_est,
                cl_estimate: cl_est,
                fb_estimate: fb_est,
                er_log_error: ee,
                cl_log_error: ce,
                fb_log_error: fe,
                er_q_error: q_error(er_est, truth as f64),
                cl_q_error: q_error(cl_est, truth as f64),
                fb_q_error: q_error(fb_est, truth as f64),
            });
        }
    }

    println!("\nEstimator ablation (scale {scale}):");
    print_table(
        &[
            "graph",
            "query",
            "truth",
            "ER est",
            "CL est",
            "FB est",
            "ER log-err",
            "CL log-err",
            "FB log-err",
        ],
        &rows,
    );
    let mean =
        |f: fn(&Row) -> f64| records.iter().map(f).sum::<f64>() / records.len().max(1) as f64;
    let (er_mean_q, cl_mean_q, fb_mean_q) = (
        mean(|r| r.er_q_error),
        mean(|r| r.cl_q_error),
        mean(|r| r.fb_q_error),
    );
    println!(
        "\nfeedback wins {} of {} cells (Chung-Lu {}, ER {}).\n\
         mean q-error: ER {er_mean_q:.2}, Chung-Lu {cl_mean_q:.2}, feedback {fb_mean_q:.2}.\n\
         The observed-feedback model should dominate: it reads the answer\n\
         it is estimating off the previous run's instruction counters.",
        wins.2,
        wins.0 + wins.1 + wins.2,
        wins.1,
        wins.0
    );
    // The regression guard CI leans on: feeding observed cardinalities
    // back must never rank worse than the static ER model on average.
    assert!(
        records.is_empty() || fb_mean_q <= er_mean_q,
        "feedback mean q-error {fb_mean_q:.3} exceeds static ER {er_mean_q:.3}"
    );
    if let Some(path) = args.get_str("json") {
        let mut report = benu_bench::report::BenchReport::new("estimator_eval");
        report
            .param("datasets", dataset_names.join(",").as_str())
            .param("scale", scale)
            .param("er_mean_q_error", er_mean_q)
            .param("cl_mean_q_error", cl_mean_q)
            .param("fb_mean_q_error", fb_mean_q);
        for r in &records {
            report.push_row(r);
        }
        report.write(path).expect("write json");
    }
}
