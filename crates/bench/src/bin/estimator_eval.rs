//! Ablation: cardinality-estimator quality — the Erdős–Rényi model the
//! paper inherits from SEED §5.1 vs the degree-moment (Chung-Lu) model
//! implemented as its pluggable replacement.
//!
//! For each evaluation query and dataset, compares the predicted match
//! count of both models against the true count and reports the
//! log10-error. The paper explicitly notes the estimation model "can be
//! replaced if a more accurate model is proposed"; this harness quantifies
//! the replacement.
//!
//! ```text
//! cargo run --release -p benu-bench --bin estimator_eval -- [--scale 0.05] [--datasets as,lj]
//! ```

use benu_bench::cli::Args;
use benu_bench::impl_to_json;
use benu_bench::{load_dataset, print_table};
use benu_graph::datasets::Dataset;
use benu_pattern::queries;
use benu_plan::cost::CardinalityEstimator;
use benu_plan::{ChungLuEstimator, GraphStatsEstimator, PlanBuilder};

struct Row {
    dataset: String,
    query: String,
    truth: u64,
    er_estimate: f64,
    cl_estimate: f64,
    er_log_error: f64,
    cl_log_error: f64,
}

impl_to_json!(Row {
    dataset,
    query,
    truth,
    er_estimate,
    cl_estimate,
    er_log_error,
    cl_log_error
});

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 0.05);
    let dataset_names: Vec<String> = args
        .get_str("datasets")
        .unwrap_or("as,lj,fs")
        .split(',')
        .map(String::from)
        .collect();

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut wins = (0usize, 0usize);
    for dname in &dataset_names {
        let dataset = Dataset::from_abbrev(dname).expect("unknown dataset");
        let g = load_dataset(dataset, scale);
        let er = GraphStatsEstimator::new(g.num_vertices(), g.num_edges());
        let cl = ChungLuEstimator::from_graph(&g);
        for (qname, p) in queries::evaluation_queries() {
            // Ground truth: matches of the full pattern (order-free, i.e.
            // `matches × |Aut|` to align with the models' ordered-map
            // semantics).
            let plan = PlanBuilder::new(&p)
                .graph_stats(g.num_vertices(), g.num_edges())
                .compressed(true)
                .best_plan();
            let subgraphs = benu_engine::count_embeddings(&plan, &g);
            let aut = benu_pattern::automorphism::automorphism_count(&p) as u64;
            let truth = subgraphs * aut;
            let full_mask = (1u64 << p.num_vertices()) - 1;
            let er_est = er.estimate_pattern_subset(&p, full_mask);
            let cl_est = cl.estimate_pattern_subset(&p, full_mask);
            let log_err =
                |est: f64| ((est.max(1e-9)).log10() - (truth.max(1) as f64).log10()).abs();
            let (ee, ce) = (log_err(er_est), log_err(cl_est));
            if ce < ee {
                wins.1 += 1;
            } else {
                wins.0 += 1;
            }
            rows.push(vec![
                dname.clone(),
                qname.to_string(),
                format!("{:.2e}", truth as f64),
                format!("{er_est:.2e}"),
                format!("{cl_est:.2e}"),
                format!("{ee:.2}"),
                format!("{ce:.2}"),
            ]);
            records.push(Row {
                dataset: dname.clone(),
                query: qname.to_string(),
                truth,
                er_estimate: er_est,
                cl_estimate: cl_est,
                er_log_error: ee,
                cl_log_error: ce,
            });
        }
    }

    println!("\nEstimator ablation (scale {scale}):");
    print_table(
        &[
            "graph",
            "query",
            "truth",
            "ER est",
            "CL est",
            "ER log-err",
            "CL log-err",
        ],
        &rows,
    );
    println!(
        "\nChung-Lu wins {} of {} cells (ER wins {}). The degree-moment model\n\
         should dominate on skewed graphs.",
        wins.1,
        wins.0 + wins.1,
        wins.0
    );
    if let Some(path) = args.get_str("json") {
        let mut report = benu_bench::report::BenchReport::new("estimator_eval");
        report
            .param("datasets", dataset_names.join(",").as_str())
            .param("scale", scale);
        for r in &records {
            report.push_row(r);
        }
        report.write(path).expect("write json");
    }
}
