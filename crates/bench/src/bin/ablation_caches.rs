//! Ablation: per-thread caching strategies — no TRC, triangle cache
//! (the paper's Optimization 3), and the clique-cache extension
//! (the paper's §IV-B future work, implemented here).
//!
//! Runs clique-cored queries on a clustered graph and reports execution
//! time plus cache hit statistics per strategy.
//!
//! ```text
//! cargo run --release -p benu-bench --bin ablation_caches -- [--scale 0.1] [--dataset uk]
//! ```

use benu_bench::cli::Args;
use benu_bench::impl_to_json;
use benu_bench::{load_dataset, print_table, secs};
use benu_cluster::{Cluster, ClusterConfig};
use benu_graph::datasets::Dataset;
use benu_pattern::queries;
use benu_plan::optimize::OptimizeOptions;
use benu_plan::PlanBuilder;

struct Row {
    query: String,
    strategy: String,
    time_s: f64,
    trc_executions: u64,
    kcache_executions: u64,
}

impl_to_json!(Row {
    query,
    strategy,
    time_s,
    trc_executions,
    kcache_executions
});

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 0.1);
    let dataset =
        Dataset::from_abbrev(args.get_str("dataset").unwrap_or("uk")).expect("unknown dataset");
    let g = load_dataset(dataset, scale);
    let cluster = Cluster::new(
        &g,
        ClusterConfig::builder()
            .workers(4)
            .threads_per_worker(2)
            .cache_capacity_bytes(64 << 20)
            .build(),
    );

    let strategies: [(&str, OptimizeOptions); 3] = [
        (
            "no cache",
            OptimizeOptions {
                cse: true,
                reorder: true,
                triangle_cache: false,
                clique_cache: false,
            },
        ),
        ("triangle cache", OptimizeOptions::all()),
        ("clique cache", OptimizeOptions::all_with_clique_cache()),
    ];
    let cases = [
        ("q2", queries::q2()),
        ("q4", queries::q4()),
        ("q9", queries::q9()),
        ("clique5", queries::clique(5)),
    ];

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (qname, pattern) in &cases {
        let order = PlanBuilder::new(pattern)
            .graph_stats(g.num_vertices(), g.num_edges())
            .best_plan()
            .matching_order;
        let mut row = vec![qname.to_string()];
        let mut reference = None;
        for (sname, opts) in &strategies {
            let plan = PlanBuilder::new(pattern)
                .matching_order(order.clone())
                .optimizations(*opts)
                .compressed(true)
                .build();
            // The per-machine caches persist across runs; start each
            // strategy cold so timings are comparable.
            cluster.clear_caches();
            let outcome = cluster.run(&plan).expect("cluster run failed");
            match reference {
                None => reference = Some(outcome.total_matches),
                Some(c) => assert_eq!(c, outcome.total_matches, "{qname}/{sname}"),
            }
            records.push(Row {
                query: qname.to_string(),
                strategy: sname.to_string(),
                time_s: outcome.makespan().as_secs_f64(),
                trc_executions: outcome.metrics.trc_executions,
                kcache_executions: outcome.metrics.kcache_executions,
            });
            row.push(secs(outcome.makespan()));
        }
        rows.push(row);
    }

    println!(
        "\nAblation — caching strategies on {} (scale {scale}):",
        dataset.abbrev()
    );
    print_table(
        &["query", "no cache", "triangle cache", "clique cache"],
        &rows,
    );
    println!(
        "\nexpected shape: the triangle cache pays off on patterns whose plans\n\
         re-intersect start-vertex adjacency pairs; the clique extension adds\n\
         wins only when deeper clique sets recur across branches."
    );
    if let Some(path) = args.get_str("json") {
        let mut report = benu_bench::report::BenchReport::new("ablation_caches");
        report
            .param("dataset", dataset.abbrev())
            .param("scale", scale);
        for r in &records {
            report.push_row(r);
        }
        report.write(path).expect("write json");
    }
}
