//! Exp-3 / Fig. 8 — effect of the local database cache capacity on cache
//! hit rate (a), communication cost (b) and execution time (c).
//!
//! Sweeps the per-worker cache capacity as a fraction of the data graph's
//! adjacency bytes (the paper's "relative cache capacity") for q4 and q5
//! on the Orkut stand-in.
//!
//! ```text
//! cargo run --release -p benu-bench --bin fig8_exp3 -- [--scale 0.15] [--dataset ok]
//! ```

use benu_bench::cli::Args;
use benu_bench::impl_to_json;
use benu_bench::{load_dataset, print_table};
use benu_cluster::{Cluster, ClusterConfig};
use benu_graph::datasets::Dataset;
use benu_pattern::queries;
use benu_plan::PlanBuilder;

struct Row {
    query: String,
    relative_capacity_pct: f64,
    hit_rate_pct: f64,
    comm_bytes: u64,
    time_s: f64,
}

impl_to_json!(Row {
    query,
    relative_capacity_pct,
    hit_rate_pct,
    comm_bytes,
    time_s
});

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 0.15);
    let dataset =
        Dataset::from_abbrev(args.get_str("dataset").unwrap_or("ok")).expect("unknown dataset");
    let g = load_dataset(dataset, scale);
    let graph_bytes = g.adjacency_bytes();

    let fractions = [0.05, 0.10, 0.20, 0.40, 0.60, 0.80, 1.00];
    let mut records = Vec::new();
    for (name, pattern) in [("q4", queries::q4()), ("q5", queries::q5())] {
        let plan = PlanBuilder::new(&pattern)
            .graph_stats(g.num_vertices(), g.num_edges())
            .compressed(true)
            .best_plan();
        let mut rows = Vec::new();
        for &fraction in &fractions {
            let capacity = (graph_bytes as f64 * fraction) as usize;
            let cluster = Cluster::new(
                &g,
                ClusterConfig::builder()
                    .workers(4)
                    .threads_per_worker(2)
                    .cache_capacity_bytes(capacity)
                    .build(),
            );
            let outcome = cluster.run(&plan).expect("cluster run failed");
            let row = Row {
                query: name.to_string(),
                relative_capacity_pct: 100.0 * fraction,
                hit_rate_pct: 100.0 * outcome.cache_hit_rate(),
                comm_bytes: outcome.communication_bytes(),
                time_s: outcome.makespan().as_secs_f64(),
            };
            rows.push(vec![
                format!("{:.0}%", row.relative_capacity_pct),
                format!("{:.1}%", row.hit_rate_pct),
                benu_baselines::human_bytes(row.comm_bytes),
                format!("{:.2}s", row.time_s),
            ]);
            records.push(row);
        }
        println!(
            "\nFig. 8 — {name} on {} (scale {scale}, graph {} bytes/worker-cache sweep):",
            dataset.abbrev(),
            graph_bytes
        );
        print_table(&["capacity", "hit rate", "comm", "time"], &rows);
    }
    println!(
        "\npaper shape: hit rate climbs steeply with capacity (q4 is locality-\n\
         friendly and saturates sooner than q5); communication and time fall\n\
         accordingly — memory is traded for communication."
    );
    if let Some(path) = args.get_str("json") {
        let mut report = benu_bench::report::BenchReport::new("fig8_exp3");
        report
            .param("dataset", dataset.abbrev())
            .param("scale", scale)
            .param("graph_bytes", graph_bytes as u64);
        for r in &records {
            report.push_row(r);
        }
        report.write(path).expect("write json");
    }
}
