//! Degradation curve — throughput and recovery cost vs injected fault
//! rate.
//!
//! Sweeps the transient store-fault rate over {0, 0.1%, 1%, 5%} (plus an
//! optional planned worker crash at every point) and reports matches/sec
//! alongside the recovery counters. The headline property: the *count*
//! column is constant down the sweep — recovery trades throughput, never
//! exactness.
//!
//! ```text
//! cargo run --release -p benu-bench --bin degradation_curve -- \
//!     [--scale 0.05] [--query q3] [--dataset ok] [--workers 4] \
//!     [--fault-seed 0] [--crash 1:50] [--scheduler ws] [--json out.json]
//! ```

use benu_bench::cli::Args;
use benu_bench::impl_to_json;
use benu_bench::report::BenchReport;
use benu_bench::{load_dataset, print_table};
use benu_cluster::{Cluster, ClusterConfig, SchedulerKind};
use benu_graph::datasets::Dataset;
use benu_obs::{ObsHub, ReportMode};
use benu_pattern::queries;
use benu_plan::PlanBuilder;
use std::sync::Arc;

const FAULT_RATES: [f64; 4] = [0.0, 0.001, 0.01, 0.05];

struct Point {
    fault_rate: f64,
    matches: u64,
    matches_per_sec: f64,
    elapsed_s: f64,
    transient_faults: u64,
    timeouts: u64,
    retries: u64,
    worker_crashes: u64,
    tasks_requeued: u64,
    recovery_passes: u64,
    backoff_virtual_ms: f64,
    timeout_wait_virtual_ms: f64,
}

impl_to_json!(Point {
    fault_rate,
    matches,
    matches_per_sec,
    elapsed_s,
    transient_faults,
    timeouts,
    retries,
    worker_crashes,
    tasks_requeued,
    recovery_passes,
    backoff_virtual_ms,
    timeout_wait_virtual_ms,
});

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 0.05);
    let workers: usize = args.get("workers", 4);
    let threads: usize = args.get("threads", 2);
    let qname = args.get_str("query").unwrap_or("q3").to_string();
    let dataset =
        Dataset::from_abbrev(args.get_str("dataset").unwrap_or("ok")).expect("unknown dataset");
    let scheduler = args.scheduler().unwrap_or(SchedulerKind::Static);
    let pattern = queries::by_name(&qname).expect("unknown query");
    let g = load_dataset(dataset, scale);
    let plan = PlanBuilder::new(&pattern)
        .graph_stats(g.num_vertices(), g.num_edges())
        .compressed(true)
        .best_plan();

    let mut points: Vec<Point> = Vec::new();
    let mut runs = Vec::new();
    for rate in FAULT_RATES {
        // A fresh cluster per point: cold caches keep the store traffic
        // (the fault surface) identical across the sweep.
        let hub = Arc::new(ObsHub::new());
        let mut cluster = Cluster::new_observed(
            &g,
            ClusterConfig::builder()
                .workers(workers)
                .threads_per_worker(threads)
                .scheduler(scheduler)
                .build(),
            Arc::clone(&hub),
        );
        cluster.set_fault_plan(args.fault_plan(rate));
        let outcome = cluster.run(&plan).expect("the sweep must be survivable");
        let mut run = outcome.report(ReportMode::Full);
        run.merge(hub.report(ReportMode::Full));
        runs.push(run);
        let elapsed = outcome.elapsed.as_secs_f64();
        let r = outcome.recovery;
        points.push(Point {
            fault_rate: rate,
            matches: outcome.total_matches,
            matches_per_sec: outcome.total_matches as f64 / elapsed.max(1e-9),
            elapsed_s: elapsed,
            transient_faults: r.transient_faults,
            timeouts: r.timeouts,
            retries: r.retries,
            worker_crashes: r.worker_crashes,
            tasks_requeued: r.tasks_requeued,
            recovery_passes: r.recovery_passes,
            backoff_virtual_ms: r.backoff_virtual.as_secs_f64() * 1e3,
            timeout_wait_virtual_ms: r.timeout_wait_virtual.as_secs_f64() * 1e3,
        });
    }
    for p in &points[1..] {
        assert_eq!(
            points[0].matches, p.matches,
            "rate {} changed the count — recovery must preserve exactness",
            p.fault_rate
        );
    }

    println!(
        "\nDegradation curve — {qname} on {} (scale {scale}, {workers}x{threads}, {scheduler}):",
        dataset.abbrev()
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}%", p.fault_rate * 100.0),
                p.matches.to_string(),
                format!("{:.0}", p.matches_per_sec),
                p.transient_faults.to_string(),
                p.retries.to_string(),
                p.worker_crashes.to_string(),
                p.tasks_requeued.to_string(),
                p.recovery_passes.to_string(),
                format!("{:.2}ms", p.backoff_virtual_ms),
            ]
        })
        .collect();
    print_table(
        &[
            "fault rate",
            "matches",
            "matches/s",
            "faults",
            "retries",
            "crashes",
            "requeued",
            "passes",
            "backoff",
        ],
        &rows,
    );
    println!(
        "\nexpected shape: the match count is constant down the sweep while\n\
         retries (and, with --crash, requeues) grow with the fault rate —\n\
         recovery degrades throughput gracefully instead of losing results."
    );
    if let Some(path) = args.get_str("json") {
        let mut report = BenchReport::new("degradation_curve");
        report
            .param("dataset", dataset.abbrev())
            .param("scale", scale)
            .param("query", qname.as_str())
            .param("workers", workers as u64)
            .param("threads", threads as u64)
            .param("scheduler", scheduler.name());
        for (p, run) in points.iter().zip(&runs) {
            report.push_row_with_run(p, run);
        }
        report.write(path).expect("write json");
    }
}
