//! Degradation curve — throughput and recovery cost vs injected fault
//! rate, plus an optional whole-shard outage sweep.
//!
//! The default mode sweeps the transient store-fault rate over
//! {0, 0.1%, 1%, 5%} (plus an optional planned worker crash at every
//! point) and reports matches/sec alongside the recovery counters. With
//! `--shard-outage` the sweep instead darkens whole shards under a
//! replicated store (`--replication`, default 2) and reports the
//! failover counters. The headline property in both modes: the *count*
//! column is constant down the sweep — recovery trades throughput,
//! never exactness.
//!
//! ```text
//! cargo run --release -p benu-bench --bin degradation_curve -- \
//!     [--scale 0.05] [--query q3] [--dataset ok] [--workers 4] \
//!     [--fault-seed 0] [--crash 1:50] [--scheduler ws] [--json out.json] \
//!     [--shard-outage] [--replication 2] \
//!     [--exec-mode dfs|hybrid] [--memory-budget 256k]
//! ```
//!
//! `--exec-mode`/`--memory-budget` come from the shared parser in
//! `benu_bench::cli`, so this bin, `hotpath` and `budget_sweep` accept
//! the exact same spellings.

use benu_bench::cli::Args;
use benu_bench::impl_to_json;
use benu_bench::report::BenchReport;
use benu_bench::{load_dataset, print_table};
use benu_cluster::{Cluster, ClusterConfig, ExecMode, RunOutcome, SchedulerKind};
use benu_fault::FaultPlan;
use benu_graph::datasets::Dataset;
use benu_graph::Graph;
use benu_obs::{ObsHub, ReportMode};
use benu_pattern::queries;
use benu_plan::ExecutionPlan;
use benu_plan::PlanBuilder;
use std::sync::Arc;

const FAULT_RATES: [f64; 4] = [0.0, 0.001, 0.01, 0.05];

struct Point {
    fault_rate: f64,
    matches: u64,
    matches_per_sec: f64,
    elapsed_s: f64,
    transient_faults: u64,
    timeouts: u64,
    retries: u64,
    worker_crashes: u64,
    tasks_requeued: u64,
    recovery_passes: u64,
    backoff_virtual_ms: f64,
    timeout_wait_virtual_ms: f64,
}

impl_to_json!(Point {
    fault_rate,
    matches,
    matches_per_sec,
    elapsed_s,
    transient_faults,
    timeouts,
    retries,
    worker_crashes,
    tasks_requeued,
    recovery_passes,
    backoff_virtual_ms,
    timeout_wait_virtual_ms,
});

struct OutagePoint {
    dark_shards: String,
    matches: u64,
    matches_per_sec: f64,
    elapsed_s: f64,
    shard_outages: u64,
    failovers: u64,
    failover_reads: u64,
    retries: u64,
    recovery_passes: u64,
}

impl_to_json!(OutagePoint {
    dark_shards,
    matches,
    matches_per_sec,
    elapsed_s,
    shard_outages,
    failovers,
    failover_reads,
    retries,
    recovery_passes,
});

/// The shared per-point run: fresh observed cluster (cold caches keep
/// the store traffic — the fault surface — identical across the sweep),
/// optional fault plan, full report merged with the hub's.
fn run_point(
    g: &Graph,
    config: ClusterConfig,
    plan: Option<FaultPlan>,
    query: &ExecutionPlan,
) -> (RunOutcome, benu_obs::Report) {
    let hub = Arc::new(ObsHub::new());
    let mut cluster = Cluster::new_observed(g, config, Arc::clone(&hub));
    cluster.set_fault_plan(plan);
    let outcome = cluster.run(query).expect("the sweep must be survivable");
    let mut run = outcome.report(ReportMode::Full);
    run.merge(hub.report(ReportMode::Full));
    (outcome, run)
}

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 0.05);
    let workers: usize = args.get("workers", 4);
    let threads: usize = args.get("threads", 2);
    let outage_mode = args.has("shard-outage");
    let replication: usize = args.get("replication", if outage_mode { 2 } else { 1 });
    let qname = args.get_str("query").unwrap_or("q3").to_string();
    let dataset =
        Dataset::from_abbrev(args.get_str("dataset").unwrap_or("ok")).expect("unknown dataset");
    let scheduler = args.scheduler().unwrap_or(SchedulerKind::Static);
    let pattern = queries::by_name(&qname).expect("unknown query");
    let g = load_dataset(dataset, scale);
    let plan = PlanBuilder::new(&pattern)
        .graph_stats(g.num_vertices(), g.num_edges())
        .compressed(true)
        .best_plan();
    let exec_mode = args.exec_mode().unwrap_or(ExecMode::Dfs);
    let memory_budget = args.memory_budget_bytes().unwrap_or(0);
    let config = ClusterConfig::builder()
        .workers(workers)
        .threads_per_worker(threads)
        .scheduler(scheduler)
        .replication(replication)
        .exec_mode(exec_mode)
        .memory_budget_bytes(memory_budget)
        .build();

    let mut report = BenchReport::new("degradation_curve");
    report
        .param("dataset", dataset.abbrev())
        .param("scale", scale)
        .param("query", qname.as_str())
        .param("workers", workers as u64)
        .param("threads", threads as u64)
        .param("scheduler", scheduler.name())
        .param("exec_mode", exec_mode.name())
        .param("memory_budget_bytes", memory_budget as u64)
        .param("replication", replication as u64)
        .param(
            "mode",
            if outage_mode {
                "shard-outage"
            } else {
                "fault-rate"
            },
        );

    if outage_mode {
        run_outage_sweep(&args, &g, config, &plan, &mut report);
    } else {
        run_rate_sweep(&args, &g, config, &plan, &mut report);
    }

    println!(
        "\n({} on {}, scale {scale}, {workers}x{threads}, {scheduler}, R={replication})",
        qname,
        dataset.abbrev()
    );
    if let Some(path) = args.get_str("json") {
        report.write(path).expect("write json");
    }
}

fn run_rate_sweep(
    args: &Args,
    g: &Graph,
    config: ClusterConfig,
    plan: &ExecutionPlan,
    report: &mut BenchReport,
) {
    let mut points: Vec<Point> = Vec::new();
    let mut runs = Vec::new();
    for rate in FAULT_RATES {
        let (outcome, run) = run_point(g, config, args.fault_plan(rate), plan);
        runs.push(run);
        let elapsed = outcome.elapsed.as_secs_f64();
        let r = outcome.recovery;
        points.push(Point {
            fault_rate: rate,
            matches: outcome.total_matches,
            matches_per_sec: outcome.total_matches as f64 / elapsed.max(1e-9),
            elapsed_s: elapsed,
            transient_faults: r.transient_faults,
            timeouts: r.timeouts,
            retries: r.retries,
            worker_crashes: r.worker_crashes,
            tasks_requeued: r.tasks_requeued,
            recovery_passes: r.recovery_passes,
            backoff_virtual_ms: r.backoff_virtual.as_secs_f64() * 1e3,
            timeout_wait_virtual_ms: r.timeout_wait_virtual.as_secs_f64() * 1e3,
        });
    }
    for p in &points[1..] {
        assert_eq!(
            points[0].matches, p.matches,
            "rate {} changed the count — recovery must preserve exactness",
            p.fault_rate
        );
    }

    println!("\nDegradation curve — transient fault-rate sweep:");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}%", p.fault_rate * 100.0),
                p.matches.to_string(),
                format!("{:.0}", p.matches_per_sec),
                p.transient_faults.to_string(),
                p.retries.to_string(),
                p.worker_crashes.to_string(),
                p.tasks_requeued.to_string(),
                p.recovery_passes.to_string(),
                format!("{:.2}ms", p.backoff_virtual_ms),
            ]
        })
        .collect();
    print_table(
        &[
            "fault rate",
            "matches",
            "matches/s",
            "faults",
            "retries",
            "crashes",
            "requeued",
            "passes",
            "backoff",
        ],
        &rows,
    );
    println!(
        "\nexpected shape: the match count is constant down the sweep while\n\
         retries (and, with --crash, requeues) grow with the fault rate —\n\
         recovery degrades throughput gracefully instead of losing results."
    );
    for (p, run) in points.iter().zip(&runs) {
        report.push_row_with_run(p, run);
    }
}

fn run_outage_sweep(
    args: &Args,
    g: &Graph,
    config: ClusterConfig,
    plan: &ExecutionPlan,
    report: &mut BenchReport,
) {
    assert!(
        config.replication >= 2,
        "--shard-outage needs --replication >= 2 (a single-copy store \
         cannot survive a dark shard)"
    );
    // Outage sets to sweep: clean baseline, one dark shard, and — with
    // enough workers — two dark shards chosen non-adjacent in ring
    // order, so each placement group keeps a live copy under R = 2.
    let mut sweeps: Vec<Vec<usize>> = vec![vec![], vec![0]];
    if config.workers >= 4 {
        sweeps.push(vec![0, 2]);
    }
    let seed = args.get("fault-seed", 0u64);

    let mut points: Vec<OutagePoint> = Vec::new();
    let mut runs = Vec::new();
    for dark in &sweeps {
        let fault_plan = if dark.is_empty() {
            None
        } else {
            let mut builder = FaultPlan::builder(seed);
            for &shard in dark {
                builder = builder.shard_outage(shard, 1);
            }
            Some(builder.build())
        };
        let (outcome, run) = run_point(g, config, fault_plan, plan);
        runs.push(run);
        let elapsed = outcome.elapsed.as_secs_f64();
        let r = outcome.recovery;
        let label = if dark.is_empty() {
            "none".to_string()
        } else {
            dark.iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join("+")
        };
        points.push(OutagePoint {
            dark_shards: label,
            matches: outcome.total_matches,
            matches_per_sec: outcome.total_matches as f64 / elapsed.max(1e-9),
            elapsed_s: elapsed,
            shard_outages: r.shard_outages,
            failovers: r.failovers,
            failover_reads: r.failover_reads,
            retries: r.retries,
            recovery_passes: r.recovery_passes,
        });
    }
    for p in &points[1..] {
        assert_eq!(
            points[0].matches, p.matches,
            "dark shards {{{}}} changed the count — failover must preserve exactness",
            p.dark_shards
        );
        assert_eq!(p.retries, 0, "failover must not consume retry budget");
    }

    println!(
        "\nDegradation curve — shard-outage sweep (R = {}):",
        config.replication
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.dark_shards.clone(),
                p.matches.to_string(),
                format!("{:.0}", p.matches_per_sec),
                p.shard_outages.to_string(),
                p.failovers.to_string(),
                p.failover_reads.to_string(),
                p.retries.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "dark shards",
            "matches",
            "matches/s",
            "outages",
            "failovers",
            "mirror reads",
            "retries",
        ],
        &rows,
    );
    println!(
        "\nexpected shape: the match count is constant down the sweep while\n\
         mirror reads grow with each dark shard — replica failover absorbs\n\
         whole-shard loss without burning retry budget or losing results."
    );
    for (p, run) in points.iter().zip(&runs) {
        report.push_row_with_run(p, run);
    }
}
