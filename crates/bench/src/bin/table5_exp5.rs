//! Exp-5 / Table V — BENU vs the join-based baseline (CBF stand-in)
//! across q1–q9 and the five data graphs. Each cell is
//! `time/communication`; the baseline reports CRASH when it exceeds its
//! memory cap, mirroring the paper's CBF failures on the chordal-square
//! queries.
//!
//! ```text
//! cargo run --release -p benu-bench --bin table5_exp5 -- \
//!     [--scale 0.08] [--queries q1,q2,...] [--datasets as,lj,ok,uk,fs] \
//!     [--join-cap-mb 512]
//! ```

use benu_bench::cells::{benu_cell, starjoin_cell, Cell};
use benu_bench::cli::Args;
use benu_bench::impl_to_json;
use benu_bench::{load_dataset, print_table};
use benu_cluster::{Cluster, ClusterConfig};
use benu_graph::datasets::Dataset;
use benu_pattern::queries;

struct Record {
    dataset: String,
    query: String,
    benu: Cell,
    join: Cell,
}

impl_to_json!(Record {
    dataset,
    query,
    benu,
    join
});

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 0.08);
    let join_cap = args.get("join-cap-mb", 512u64) << 20;
    let query_names: Vec<String> = args
        .get_str("queries")
        .unwrap_or("q1,q2,q3,q4,q5,q6,q7,q8,q9")
        .split(',')
        .map(String::from)
        .collect();
    let dataset_names: Vec<String> = args
        .get_str("datasets")
        .unwrap_or("as,lj,ok,uk,fs")
        .split(',')
        .map(String::from)
        .collect();

    let mut records = Vec::new();
    let mut rows = Vec::new();
    for dname in &dataset_names {
        let dataset = Dataset::from_abbrev(dname).expect("unknown dataset");
        let g = load_dataset(dataset, scale);
        let cluster = Cluster::new(
            &g,
            ClusterConfig::builder()
                .workers(4)
                .threads_per_worker(2)
                .cache_capacity_bytes(64 << 20)
                .tau(500)
                .build(),
        );
        for qname in &query_names {
            let pattern = queries::by_name(qname).expect("unknown query");
            let benu = benu_cell(&cluster, &g, &pattern, true);
            let join = starjoin_cell(&g, &pattern, join_cap);
            if join.completed {
                assert_eq!(
                    benu.matches, join.matches,
                    "{dname}/{qname}: counts disagree"
                );
            }
            eprintln!(
                "[cell] {dname}/{qname}: BENU {} | join {}",
                benu.render(),
                join.render()
            );
            rows.push(vec![
                dname.clone(),
                qname.clone(),
                join.render(),
                benu.render(),
                format!("{:.1e}", benu.matches as f64),
            ]);
            records.push(Record {
                dataset: dname.clone(),
                query: qname.clone(),
                benu,
                join,
            });
        }
    }

    println!("\nTable V — BENU vs join-based baseline (scale {scale}):");
    print_table(
        &["graph", "query", "StarJoin (CBF-style)", "BENU", "matches"],
        &rows,
    );
    let benu_wins = records
        .iter()
        .filter(|r| !r.join.completed || r.benu.time_s < r.join.time_s)
        .count();
    println!(
        "\nBENU wins or survives {benu_wins}/{} cells.\n\
         paper shape: BENU faster nearly everywhere (up to ~10x on the\n\
         clique-cored q2/q4/q6), the join baseline's communication dwarfs\n\
         BENU's, and the baseline crashes on chordal-square queries; the\n\
         5-cycle q5 is the baseline's best case.",
        records.len()
    );
    if let Some(path) = args.get_str("json") {
        let mut report = benu_bench::report::BenchReport::new("table5_exp5");
        report
            .param("scale", scale)
            .param("datasets", dataset_names.join(",").as_str())
            .param("queries", query_names.join(",").as_str())
            .param("join_cap_bytes", join_cap);
        for r in &records {
            report.push_row(r);
        }
        report.write(path).expect("write json");
    }
}
