//! Exp-4 / Fig. 9 — effect of task splitting on task-time distribution
//! (a) and per-worker load (b).
//!
//! Runs q5 on the Orkut stand-in with splitting off and with the degree
//! threshold τ, reporting task counts, the tail of the task-time
//! distribution, and per-worker busy times.
//!
//! ```text
//! cargo run --release -p benu-bench --bin fig9_exp4 -- [--scale 0.15] [--tau 64] [--query q5]
//! ```

use benu_bench::cli::Args;
use benu_bench::impl_to_json;
use benu_bench::report::BenchReport;
use benu_bench::{load_dataset, print_table};
use benu_cluster::{Cluster, ClusterConfig, RunOutcome, SchedulerKind};
use benu_graph::datasets::Dataset;
use benu_obs::{ObsHub, ReportMode};
use benu_pattern::queries;
use benu_plan::PlanBuilder;
use std::sync::Arc;

struct Summary {
    variant: String,
    scheduler: String,
    tasks: usize,
    steals: u64,
    max_task_s: f64,
    p99_task_s: f64,
    mean_task_s: f64,
    load_imbalance: f64,
    worker_busy_s: Vec<f64>,
}

impl_to_json!(Summary {
    variant,
    scheduler,
    tasks,
    steals,
    max_task_s,
    p99_task_s,
    mean_task_s,
    load_imbalance,
    worker_busy_s,
});

fn summarize(variant: &str, outcome: &RunOutcome) -> Summary {
    let mut times: Vec<f64> = outcome
        .task_times
        .as_ref()
        .expect("task times collected")
        .iter()
        .map(|d| d.as_secs_f64())
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p99 = times[((times.len() as f64 * 0.99) as usize).min(times.len() - 1)];
    Summary {
        variant: variant.to_string(),
        scheduler: outcome.scheduler.name().to_string(),
        tasks: outcome.total_tasks,
        steals: outcome.total_steals(),
        max_task_s: *times.last().unwrap_or(&0.0),
        p99_task_s: p99,
        mean_task_s: times.iter().sum::<f64>() / times.len().max(1) as f64,
        load_imbalance: outcome.load_imbalance(),
        worker_busy_s: outcome
            .workers
            .iter()
            .map(|w| w.busy_time.as_secs_f64())
            .collect(),
    }
}

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 0.15);
    let tau: usize = args.get("tau", 64);
    let qname = args.get_str("query").unwrap_or("q5").to_string();
    let dataset =
        Dataset::from_abbrev(args.get_str("dataset").unwrap_or("ok")).expect("unknown dataset");
    let pattern = queries::by_name(&qname).expect("unknown query");
    let g = load_dataset(dataset, scale);
    let plan = PlanBuilder::new(&pattern)
        .graph_stats(g.num_vertices(), g.num_edges())
        .compressed(true)
        .best_plan();

    // `--scheduler` pins one policy; without it both are run for the A/B.
    let schedulers = match args.scheduler() {
        Some(kind) => vec![kind],
        None => vec![SchedulerKind::Static, SchedulerKind::WorkStealing],
    };
    let mut summaries = Vec::new();
    let mut runs = Vec::new();
    for (variant, tau_value) in [("no splitting", 0usize), ("tau splitting", tau)] {
        for &kind in &schedulers {
            // Each variant gets its own hub so the per-layer metrics in
            // the JSON dump are attributable to one run.
            let hub = Arc::new(ObsHub::new());
            let cluster = Cluster::new_observed(
                &g,
                ClusterConfig::builder()
                    .workers(4)
                    .threads_per_worker(2)
                    .cache_capacity_bytes(64 << 20)
                    .tau(tau_value)
                    .collect_task_times(true)
                    .scheduler(kind)
                    .build(),
                Arc::clone(&hub),
            );
            let outcome = cluster.run(&plan).expect("cluster run failed");
            let mut run = outcome.report(ReportMode::Full);
            run.merge(hub.report(ReportMode::Full));
            runs.push(run);
            summaries.push((summarize(variant, &outcome), outcome.total_matches));
        }
    }
    for (s, count) in &summaries[1..] {
        assert_eq!(
            summaries[0].1, *count,
            "{}/{} changed the count",
            s.variant, s.scheduler
        );
    }

    println!(
        "\nFig. 9 — task splitting, {qname} on {} (scale {scale}, tau {tau}):",
        dataset.abbrev()
    );
    let rows: Vec<Vec<String>> = summaries
        .iter()
        .map(|(s, _)| {
            vec![
                s.variant.clone(),
                s.scheduler.clone(),
                s.tasks.to_string(),
                s.steals.to_string(),
                format!("{:.4}s", s.max_task_s),
                format!("{:.4}s", s.p99_task_s),
                format!("{:.6}s", s.mean_task_s),
                format!("{:.2}", s.load_imbalance),
            ]
        })
        .collect();
    print_table(
        &[
            "variant",
            "scheduler",
            "tasks",
            "steals",
            "max task",
            "p99 task",
            "mean task",
            "imbalance",
        ],
        &rows,
    );
    for (s, _) in &summaries {
        println!(
            "{:<14} {:<14} per-worker busy time: {:?}",
            s.variant,
            s.scheduler,
            s.worker_busy_s
                .iter()
                .map(|t| format!("{t:.2}s"))
                .collect::<Vec<_>>()
        );
    }
    println!(
        "\npaper shape: without splitting a few hub tasks dominate (huge max\n\
         task time, skewed reducers); with tau the task count grows slightly\n\
         while the maximum task time collapses and workers even out. Work\n\
         stealing attacks the same skew at run time: steals > 0 and the\n\
         imbalance drops even when tau is off."
    );
    if let Some(path) = args.get_str("json") {
        let mut report = BenchReport::new("fig9_exp4");
        report
            .param("dataset", dataset.abbrev())
            .param("scale", scale)
            .param("query", qname.as_str())
            .param("tau", tau as u64);
        for ((s, _), run) in summaries.iter().zip(&runs) {
            report.push_row_with_run(s, run);
        }
        report.write(path).expect("write json");
    }
}
