//! Hot-loop perf-regression harness: embeddings/sec and heap traffic of
//! the single-threaded engine, pooled vs unpooled execution buffers.
//!
//! Runs fig9-style workloads (q5 with the triangle cache, clique4 with
//! the clique-cache extension) through one [`LocalEngine`] per arm over
//! the full §V-B task list. Each arm gets one warmup pass (fills the
//! per-thread caches and the buffer pool), then `--iters` measured
//! passes; the report keeps the best wall time and the *minimum*
//! allocation delta — the steady state, which for the pooled arm should
//! be ~0 allocations per task. Heap traffic is metered by installing
//! [`benu_obs::alloc::CountingAllocator`] as the global allocator, so
//! the numbers cover everything the process does inside the measured
//! region, not just the paths we remembered to instrument.
//!
//! ```text
//! cargo run --release -p benu-bench --bin hotpath -- \
//!     [--dataset uk] [--scale 0.05] [--tau 32] [--iters 3] \
//!     [--exec-mode dfs|hybrid] [--memory-budget 256k] \
//!     [--codec raw-u32|delta-varint] \
//!     [--json BENCH_hotpath.json] [--check-against BENCH_hotpath.json]
//! ```
//!
//! Beyond the pooled/unpooled arms, the bin reports the data-plane
//! numbers behind them: every row carries a `wire_bytes` column — the
//! encoded store footprint of the dataset under `--codec`, i.e. the
//! bytes one full adjacency sweep ships — and a dedicated
//! intersection-kernel A/B times the block (bitset) kernels against the
//! scalar merge over the dataset's densest vertex pairs (the clique4
//! hot loop in isolation).
//!
//! `--exec-mode hybrid` drives the same task list through a
//! [`FrontierEngine`] under `--memory-budget` (shared CLI parser with
//! `degradation_curve`/`budget_sweep`); the default is the DFS engine,
//! which is what the committed `--check-against` baseline measures.
//!
//! `--check-against` compares this run's pooled throughput per workload
//! against a previously committed report and exits nonzero on a >20%
//! regression — the CI `perf-smoke` gate.

use benu_bench::cli::Args;
use benu_bench::impl_to_json;
use benu_bench::{load_dataset, print_table};
use benu_cluster::ExecMode;
use benu_engine::{
    CompiledPlan, CountingConsumer, FrontierEngine, InMemorySource, LocalEngine, MemoryBudget,
    PoolStats,
};
use benu_graph::datasets::Dataset;
use benu_graph::ops;
use benu_graph::view::{self, GraphViews};
use benu_graph::{TotalOrder, VertexId};
use benu_kvstore::{CodecKind, KvStore};
use benu_obs::alloc::{AllocSnapshot, CountingAllocator};
use benu_obs::safe_ratio;
use benu_pattern::queries;
use benu_plan::optimize::OptimizeOptions;
use benu_plan::PlanBuilder;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Throughput regression (relative to the committed baseline) that fails
/// the `--check-against` gate.
const MAX_REGRESSION: f64 = 0.20;

struct Row {
    workload: String,
    arm: String,
    matches: u64,
    tasks: u64,
    best_wall_s: f64,
    matches_per_sec: f64,
    allocs_per_task: f64,
    alloc_bytes_per_task: f64,
    pool_hits: u64,
    pool_misses: u64,
    pool_returns: u64,
    wire_bytes: u64,
}

impl_to_json!(Row {
    workload,
    arm,
    matches,
    tasks,
    best_wall_s,
    matches_per_sec,
    allocs_per_task,
    alloc_bytes_per_task,
    pool_hits,
    pool_misses,
    pool_returns,
    wire_bytes
});

/// One workload's fixed measurement inputs, shared by both arms.
struct Workload<'a> {
    name: &'a str,
    compiled: &'a CompiledPlan,
    source: &'a InMemorySource,
    order: &'a TotalOrder,
    tasks: &'a [benu_engine::SearchTask],
    iters: usize,
    mode: ExecMode,
    budget: usize,
}

/// The measured execution driver: the plain DFS engine, or the hybrid
/// frontier engine batching `FRONTIER_BATCH` tasks per `run_batch`.
enum Driver<'a> {
    Dfs(LocalEngine<'a, InMemorySource>),
    Hybrid(FrontierEngine<'a, InMemorySource>),
}

const FRONTIER_BATCH: usize = 64;

impl Driver<'_> {
    fn run_pass(
        &mut self,
        tasks: &[benu_engine::SearchTask],
        consumer: &mut CountingConsumer,
    ) -> u64 {
        match self {
            Driver::Dfs(engine) => {
                let mut total = 0;
                for &task in tasks {
                    total += engine.run_task(task, consumer).matches;
                }
                total
            }
            Driver::Hybrid(fe) => tasks
                .chunks(FRONTIER_BATCH)
                .map(|chunk| fe.run_batch(chunk, consumer).matches)
                .sum(),
        }
    }

    fn pool_stats(&self) -> PoolStats {
        match self {
            Driver::Dfs(engine) => engine.pool_stats(),
            Driver::Hybrid(fe) => fe.pool_stats(),
        }
    }
}

/// One measured arm: warmup pass, then `iters` timed passes keeping the
/// best wall time and the steady-state (minimum) allocation delta.
fn measure(w: &Workload<'_>, arm: &str, pooled: bool, wire_bytes: u64) -> Row {
    let Workload {
        name: workload,
        compiled,
        source,
        order,
        tasks,
        iters,
        mode,
        budget,
    } = *w;
    // Oversize the per-thread caches relative to the workload: the bench
    // measures the interpreter's hot loop, and LRU evictions would
    // re-run cache compute closures (which allocate) every pass.
    let engine =
        LocalEngine::with_triangle_cache(compiled, source, order, 1 << 18).with_pooling(pooled);
    let mut driver = match mode {
        ExecMode::Dfs => Driver::Dfs(engine),
        ExecMode::Hybrid => {
            Driver::Hybrid(FrontierEngine::new(engine, MemoryBudget::bytes(budget)))
        }
    };
    let mut consumer = CountingConsumer::default();

    // Warmup: fills the triangle/clique caches and the buffer pool so the
    // measured passes see the steady state both arms would reach in a
    // long-running worker.
    let warm = driver.run_pass(tasks, &mut consumer);

    let mut matches = warm;
    let mut best_wall = f64::INFINITY;
    let mut steady = AllocSnapshot {
        allocs: u64::MAX,
        bytes: u64::MAX,
    };
    for _ in 0..iters {
        let before = ALLOC.snapshot();
        let start = Instant::now();
        matches = driver.run_pass(tasks, &mut consumer);
        let wall = start.elapsed().as_secs_f64();
        let delta = ALLOC.snapshot().delta_since(&before);
        best_wall = best_wall.min(wall);
        steady.allocs = steady.allocs.min(delta.allocs);
        steady.bytes = steady.bytes.min(delta.bytes);
    }

    let stats = driver.pool_stats();
    let n_tasks = tasks.len() as f64;
    Row {
        workload: workload.to_string(),
        arm: arm.to_string(),
        matches,
        tasks: tasks.len() as u64,
        best_wall_s: best_wall,
        matches_per_sec: safe_ratio(matches as f64, best_wall),
        allocs_per_task: safe_ratio(steady.allocs as f64, n_tasks),
        alloc_bytes_per_task: safe_ratio(steady.bytes as f64, n_tasks),
        pool_hits: stats.hits,
        pool_misses: stats.misses,
        pool_returns: stats.returns,
        wire_bytes,
    }
}

/// The intersection-kernel A/B: times the block (bitset) kernels against
/// the scalar merge over every unordered pair of the dataset's densest
/// vertices — the clique4 hot loop in isolation. Returns
/// `(pairs, scalar_wall, bitset_wall)` for the best of `iters` passes,
/// after asserting the two kernels agree on every pair.
fn kernel_ab(g: &benu_graph::Graph, iters: usize) -> (u64, f64, f64) {
    const HUBS: usize = 48;
    let mut by_degree: Vec<VertexId> = g.vertices().collect();
    by_degree.sort_unstable_by_key(|&v| std::cmp::Reverse(g.neighbors(v).len()));
    by_degree.truncate(HUBS);
    let hubs = by_degree;
    let views = GraphViews::build(g);
    let mut out: Vec<VertexId> = Vec::new();
    let mut run = |bitset: bool| -> (f64, u64) {
        let mut best = f64::INFINITY;
        let mut checksum = 0u64;
        for _ in 0..iters.max(1) {
            let start = Instant::now();
            let mut sum = 0u64;
            for (i, &a) in hubs.iter().enumerate() {
                for &b in &hubs[i + 1..] {
                    if bitset {
                        view::intersect_into(views.view(g, a), views.view(g, b), &mut out);
                    } else {
                        ops::intersect_into(g.neighbors(a), g.neighbors(b), &mut out);
                    }
                    sum = sum.wrapping_add(out.len() as u64);
                    sum = sum.wrapping_add(out.last().copied().unwrap_or(0) as u64);
                }
            }
            best = best.min(start.elapsed().as_secs_f64());
            checksum = sum;
        }
        (best, checksum)
    };
    let (scalar_wall, scalar_sum) = run(false);
    let (bitset_wall, bitset_sum) = run(true);
    assert_eq!(
        scalar_sum, bitset_sum,
        "the kernels must agree on every hub pair"
    );
    let pairs = (hubs.len() * hubs.len().saturating_sub(1) / 2) as u64;
    (pairs, scalar_wall, bitset_wall)
}

/// Pulls `matches_per_sec` for the pooled arm of `workload` out of a
/// previously written report by string scanning the canonical pretty
/// JSON (row objects list `workload`, then `arm`, then the numbers).
fn baseline_throughput(json: &str, workload: &str) -> Option<f64> {
    let mut at = 0;
    let key = format!("\"workload\": \"{workload}\"");
    while let Some(pos) = json[at..].find(&key) {
        let obj = &json[at + pos..];
        let end = obj.find('}').unwrap_or(obj.len());
        let obj = &obj[..end];
        if obj.contains("\"arm\": \"pooled\"") {
            let v = obj.split("\"matches_per_sec\": ").nth(1)?;
            let num: String = v
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
                .collect();
            return num.parse().ok();
        }
        at += pos + key.len();
    }
    None
}

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 0.05);
    let tau: usize = args.get("tau", 32);
    let iters: usize = args.get("iters", 3);
    let mode = args.exec_mode().unwrap_or(ExecMode::Dfs);
    let budget = args.memory_budget_bytes().unwrap_or(0);
    let codec = args.codec().unwrap_or(CodecKind::RawU32);
    let dataset =
        Dataset::from_abbrev(args.get_str("dataset").unwrap_or("uk")).expect("unknown dataset");
    let g = load_dataset(dataset, scale);
    let source = InMemorySource::from_graph(&g);
    let order = TotalOrder::new(&g);
    // Bytes on the wire: the encoded store footprint under `--codec` —
    // what one full adjacency sweep ships from a cold store.
    let wire_bytes = KvStore::from_graph_with(&g, 1, 1, codec).total_value_bytes() as u64;

    // Fig. 9-style workloads, uncompressed so the measured loop is the
    // backtracking interpreter itself rather than VCBC code expansion.
    let workloads = [
        ("q5", queries::q5(), OptimizeOptions::all()),
        (
            "clique4",
            queries::clique(4),
            OptimizeOptions::all_with_clique_cache(),
        ),
    ];

    let mut rows = Vec::new();
    let mut table = Vec::new();
    let mut speedups: Vec<(String, f64)> = Vec::new();
    for (name, pattern, opts) in &workloads {
        let plan = PlanBuilder::new(pattern)
            .graph_stats(g.num_vertices(), g.num_edges())
            .optimizations(*opts)
            .compressed(false)
            .best_plan();
        let compiled = CompiledPlan::compile(&plan);
        let tasks = benu_engine::task::generate_tasks(&g, tau, compiled.second_adjacent);
        let w = Workload {
            name,
            compiled: &compiled,
            source: &source,
            order: &order,
            tasks: &tasks,
            iters,
            mode,
            budget,
        };

        let pooled = measure(&w, "pooled", true, wire_bytes);
        let unpooled = measure(&w, "unpooled", false, wire_bytes);
        assert_eq!(
            pooled.matches, unpooled.matches,
            "{name}: pooled and unpooled arms must count identically"
        );
        assert_eq!(
            unpooled.pool_hits + unpooled.pool_misses + unpooled.pool_returns,
            0,
            "{name}: a disabled pool must be inert"
        );
        // The hybrid driver allocates frontier entries per pass, so the
        // allocation-free steady-state bar applies to the DFS loop only.
        assert!(
            mode == ExecMode::Hybrid || pooled.allocs_per_task < 1.0,
            "{name}: pooled steady state should be allocation-free, saw {:.2} allocs/task",
            pooled.allocs_per_task
        );

        let speedup = safe_ratio(pooled.matches_per_sec, unpooled.matches_per_sec);
        speedups.push((name.to_string(), speedup));
        for r in [&pooled, &unpooled] {
            table.push(vec![
                r.workload.clone(),
                r.arm.clone(),
                r.matches.to_string(),
                r.tasks.to_string(),
                format!("{:.4}s", r.best_wall_s),
                format!("{:.0}", r.matches_per_sec),
                format!("{:.2}", r.allocs_per_task),
                format!("{:.1}", r.alloc_bytes_per_task),
                r.pool_hits.to_string(),
                r.wire_bytes.to_string(),
            ]);
        }
        rows.push(pooled);
        rows.push(unpooled);
    }

    println!(
        "\nHot-path throughput on {} (scale {scale}, tau {tau}, {mode}, codec {codec}, \
         best of {iters}):",
        dataset.abbrev()
    );
    print_table(
        &[
            "workload",
            "arm",
            "matches",
            "tasks",
            "best wall",
            "matches/s",
            "allocs/task",
            "bytes/task",
            "pool hits",
            "wire bytes",
        ],
        &table,
    );
    for (name, speedup) in &speedups {
        println!("{name}: pooled throughput = {speedup:.2}x unpooled");
    }

    let (pairs, scalar_wall, bitset_wall) = kernel_ab(&g, iters);
    let kernel_speedup = safe_ratio(scalar_wall, bitset_wall);
    println!(
        "kernel A/B over {pairs} hub pairs: scalar {:.0} pairs/s, bitset {:.0} pairs/s \
         — bitset = {kernel_speedup:.2}x scalar",
        safe_ratio(pairs as f64, scalar_wall),
        safe_ratio(pairs as f64, bitset_wall),
    );

    if let Some(path) = args.get_str("json") {
        let mut report = benu_bench::report::BenchReport::new("hotpath");
        report
            .param("dataset", dataset.abbrev())
            .param("scale", scale)
            .param("tau", tau as u64)
            .param("iters", iters as u64)
            .param("exec_mode", mode.name())
            .param("memory_budget_bytes", budget as u64)
            .param("codec", codec.name())
            .param("wire_bytes", wire_bytes)
            .param("kernel.hub_pairs", pairs)
            .param(
                "kernel.scalar_pairs_per_sec",
                safe_ratio(pairs as f64, scalar_wall),
            )
            .param(
                "kernel.bitset_pairs_per_sec",
                safe_ratio(pairs as f64, bitset_wall),
            )
            .param("kernel.bitset_speedup", kernel_speedup);
        for (name, speedup) in &speedups {
            report.param(&format!("{name}.pooled_speedup"), *speedup);
        }
        for r in &rows {
            report.push_row(r);
        }
        report.write(path).expect("write json");
    }

    if let Some(path) = args.get_str("check-against") {
        let baseline = std::fs::read_to_string(path).expect("read baseline report");
        let mut failed = false;
        for r in rows.iter().filter(|r| r.arm == "pooled") {
            let Some(base) = baseline_throughput(&baseline, &r.workload) else {
                eprintln!("[check] {}: no pooled baseline row, skipping", r.workload);
                continue;
            };
            let floor = base * (1.0 - MAX_REGRESSION);
            let verdict = if r.matches_per_sec < floor {
                failed = true;
                "REGRESSION"
            } else {
                "ok"
            };
            eprintln!(
                "[check] {}: {:.0} matches/s vs baseline {:.0} (floor {:.0}) — {verdict}",
                r.workload, r.matches_per_sec, base, floor
            );
        }
        if failed {
            eprintln!(
                "[check] throughput regressed more than {:.0}%",
                MAX_REGRESSION * 100.0
            );
            std::process::exit(1);
        }
    }
}
