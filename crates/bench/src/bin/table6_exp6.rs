//! Exp-6 / Table VI — BENU vs BiGJoin-style WCOJ on the patterns BiGJoin
//! specially optimizes: triangle, 4-clique, 5-clique, q4 and q5, on the
//! Orkut and FriendSter stand-ins. Both WCOJ modes are run: shared-memory
//! (frontier fully materialised; OOM-prone) and distributed (batched).
//!
//! ```text
//! cargo run --release -p benu-bench --bin table6_exp6 -- \
//!     [--scale 0.08] [--wcoj-cap-mb 512]
//! ```

use benu_baselines::wcoj::WcojMode;
use benu_bench::cells::{benu_cell, wcoj_cell, Cell};
use benu_bench::cli::Args;
use benu_bench::impl_to_json;
use benu_bench::{load_dataset, print_table};
use benu_cluster::{Cluster, ClusterConfig};
use benu_graph::datasets::Dataset;
use benu_pattern::queries;

struct Record {
    dataset: String,
    query: String,
    wcoj_shared: Cell,
    wcoj_distributed: Cell,
    benu: Cell,
}

impl_to_json!(Record {
    dataset,
    query,
    wcoj_shared,
    wcoj_distributed,
    benu
});

fn time_or_oom(c: &Cell) -> String {
    if c.completed {
        format!("{:.2}s", c.time_s)
    } else if c.budget_exceeded {
        format!(">{:.0}s", c.time_s)
    } else {
        "OOM".to_string()
    }
}

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 0.08);
    let cap = args.get("wcoj-cap-mb", 512u64) << 20;

    let patterns = [
        ("triangle", queries::triangle()),
        ("clique4", queries::clique(4)),
        ("clique5", queries::clique(5)),
        ("q4", queries::q4()),
        ("q5", queries::q5()),
    ];

    let mut records = Vec::new();
    let mut rows = Vec::new();
    for dataset in [Dataset::Orkut, Dataset::FriendSter] {
        let g = load_dataset(dataset, scale);
        let cluster = Cluster::new(
            &g,
            ClusterConfig::builder()
                .workers(4)
                .threads_per_worker(2)
                .cache_capacity_bytes(64 << 20)
                .build(),
        );
        for (qname, pattern) in &patterns {
            let shared = wcoj_cell(&g, pattern, WcojMode::SharedMemory, cap);
            let distributed = wcoj_cell(&g, pattern, WcojMode::Distributed, cap);
            let benu = benu_cell(&cluster, &g, pattern, true);
            if shared.completed {
                assert_eq!(shared.matches, benu.matches, "{qname}: counts disagree");
            }
            if distributed.completed {
                assert_eq!(
                    distributed.matches, benu.matches,
                    "{qname}: counts disagree"
                );
            }
            eprintln!(
                "[cell] {}/{qname}: S {} | D {} | BENU {:.2}s",
                dataset.abbrev(),
                time_or_oom(&shared),
                time_or_oom(&distributed),
                benu.time_s
            );
            rows.push(vec![
                dataset.abbrev().to_string(),
                qname.to_string(),
                time_or_oom(&shared),
                time_or_oom(&distributed),
                format!("{:.2}s", benu.time_s),
                format!("{:.1e}", benu.matches as f64),
            ]);
            records.push(Record {
                dataset: dataset.abbrev().to_string(),
                query: qname.to_string(),
                wcoj_shared: shared,
                wcoj_distributed: distributed,
                benu,
            });
        }
    }

    println!("\nTable VI — execution time vs BiGJoin-style WCOJ (scale {scale}):");
    print_table(
        &["graph", "query", "WCOJ(S)", "WCOJ(D)", "BENU", "matches"],
        &rows,
    );
    println!(
        "\npaper shape: the shared-memory WCOJ OOMs on dense patterns/graphs;\n\
         the batched distributed mode survives but pays heavy shuffle; BENU\n\
         wins on the complex patterns and everywhere on the larger graph."
    );
    if let Some(path) = args.get_str("json") {
        let mut report = benu_bench::report::BenchReport::new("table6_exp6");
        report.param("scale", scale).param("wcoj_cap_bytes", cap);
        for r in &records {
            report.push_row(r);
        }
        report.write(path).expect("write json");
    }
}
