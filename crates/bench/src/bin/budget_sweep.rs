//! Budget sweep — hybrid frontier execution under a memory-budget sweep
//! vs the DFS baseline: throughput, kv round trips and peak frontier
//! bytes per budget.
//!
//! Runs the fig9-style workloads (q5, clique4) through a fresh cluster
//! per arm with the database cache disabled, so every adjacency fetch is
//! a store round trip and the frontier's batched reads are visible in
//! `kv.requests`. The DFS baseline runs first, then the hybrid engine
//! sweeps byte budgets from spill-forcing tiny to unbounded. The bin
//! asserts the headline properties directly: every arm reproduces the
//! DFS match count exactly, the unbounded hybrid issues *fewer* kv round
//! trips than DFS, and it never spills — tight budgets trade round-trip
//! savings for spills, never exactness.
//!
//! ```text
//! cargo run --release -p benu-bench --bin budget_sweep -- \
//!     [--dataset ok] [--scale 0.05] [--workers 4] [--threads 2] \
//!     [--tau 32] [--scheduler static] [--codec delta-varint] \
//!     [--json BENCH_budget_sweep.json]
//! ```
//!
//! `--exec-mode`/`--memory-budget` spellings are shared with `hotpath`
//! and `degradation_curve` via `benu_bench::cli`; here `--memory-budget`
//! *adds* one extra budget point to the sweep.

use benu_bench::cli::Args;
use benu_bench::impl_to_json;
use benu_bench::report::BenchReport;
use benu_bench::{load_dataset, print_table};
use benu_cluster::{Cluster, ClusterConfig, CodecKind, ExecMode, RunOutcome, SchedulerKind};
use benu_graph::datasets::Dataset;
use benu_graph::Graph;
use benu_obs::safe_ratio;
use benu_pattern::queries;
use benu_plan::optimize::OptimizeOptions;
use benu_plan::{ExecutionPlan, PlanBuilder};

/// The swept budgets: spill-forcing tiny through unbounded (0).
const BUDGETS: [(&str, usize); 4] = [
    ("4k", 4 << 10),
    ("64k", 64 << 10),
    ("1m", 1 << 20),
    ("unbounded", 0),
];

struct Row {
    workload: String,
    mode: String,
    budget_bytes: u64,
    matches: u64,
    elapsed_s: f64,
    matches_per_sec: f64,
    kv_requests: u64,
    kv_keys: u64,
    deduped_keys: u64,
    store_bytes: u64,
    frontier_expansions: u64,
    spill_events: u64,
    peak_frontier_bytes: u64,
}

impl_to_json!(Row {
    workload,
    mode,
    budget_bytes,
    matches,
    elapsed_s,
    matches_per_sec,
    kv_requests,
    kv_keys,
    deduped_keys,
    store_bytes,
    frontier_expansions,
    spill_events,
    peak_frontier_bytes
});

fn row(workload: &str, label: &str, budget: usize, outcome: &RunOutcome) -> Row {
    let elapsed = outcome.elapsed.as_secs_f64();
    Row {
        workload: workload.to_string(),
        mode: label.to_string(),
        budget_bytes: budget as u64,
        matches: outcome.total_matches,
        elapsed_s: elapsed,
        matches_per_sec: safe_ratio(outcome.total_matches as f64, elapsed),
        kv_requests: outcome.kv.requests,
        kv_keys: outcome.kv.keys,
        deduped_keys: outcome.kv.deduped_keys,
        store_bytes: outcome.kv.bytes,
        frontier_expansions: outcome.frontier_expansions,
        spill_events: outcome.spill_events,
        peak_frontier_bytes: outcome.peak_frontier_bytes,
    }
}

/// One arm: a fresh cluster (cold store, no database cache) so the kv
/// round-trip counts are comparable across arms.
fn run_arm(
    g: &Graph,
    base: &ClusterConfig,
    mode: ExecMode,
    budget: usize,
    plan: &ExecutionPlan,
) -> RunOutcome {
    let config = ClusterConfig::builder()
        .workers(base.workers)
        .threads_per_worker(base.threads_per_worker)
        .cache_capacity_bytes(0)
        .tau(base.tau)
        .scheduler(base.scheduler)
        .codec(base.codec)
        .exec_mode(mode)
        .memory_budget_bytes(budget)
        .build();
    Cluster::new(g, config)
        .run(plan)
        .expect("a budget sweep arm must never error — tight budgets spill, they don't fail")
}

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 0.05);
    let workers: usize = args.get("workers", 4);
    let threads: usize = args.get("threads", 2);
    let tau: usize = args.get("tau", 32);
    let scheduler = args.scheduler().unwrap_or(SchedulerKind::Static);
    let codec = args.codec().unwrap_or(CodecKind::RawU32);
    let dataset =
        Dataset::from_abbrev(args.get_str("dataset").unwrap_or("ok")).expect("unknown dataset");
    let g = load_dataset(dataset, scale);
    let base = ClusterConfig::builder()
        .workers(workers)
        .threads_per_worker(threads)
        .tau(tau)
        .scheduler(scheduler)
        .codec(codec)
        .build();

    let mut budgets: Vec<(String, usize)> = BUDGETS
        .iter()
        .map(|&(label, bytes)| (label.to_string(), bytes))
        .collect();
    if let Some(extra) = args.memory_budget_bytes() {
        if !budgets.iter().any(|(_, b)| *b == extra) {
            budgets.push((format!("{extra}b"), extra));
            budgets.sort_by_key(|&(_, b)| if b == 0 { usize::MAX } else { b });
        }
    }

    let workloads = [
        ("q5", queries::q5(), OptimizeOptions::all()),
        (
            "clique4",
            queries::clique(4),
            OptimizeOptions::all_with_clique_cache(),
        ),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (name, pattern, opts) in &workloads {
        let plan = PlanBuilder::new(pattern)
            .graph_stats(g.num_vertices(), g.num_edges())
            .optimizations(*opts)
            .compressed(false)
            .best_plan();

        let dfs = run_arm(&g, &base, ExecMode::Dfs, 0, &plan);
        rows.push(row(name, "dfs", 0, &dfs));

        for (label, budget) in &budgets {
            let hy = run_arm(&g, &base, ExecMode::Hybrid, *budget, &plan);
            assert_eq!(
                hy.total_matches, dfs.total_matches,
                "{name}/{label}: the budget changed the count — spills must \
                 land on task boundaries, never drop work"
            );
            if *budget == 0 {
                assert_eq!(hy.spill_events, 0, "{name}: unbounded must not spill");
                assert!(
                    hy.kv.requests < dfs.kv.requests,
                    "{name}: unbounded hybrid must batch reads into fewer kv \
                     round trips than DFS ({} vs {})",
                    hy.kv.requests,
                    dfs.kv.requests
                );
            }
            rows.push(row(name, &format!("hybrid/{label}"), *budget, &hy));
        }
    }

    println!(
        "\nBudget sweep on {} (scale {scale}, {workers}x{threads}, {scheduler}, tau {tau}, \
         codec {codec}):",
        dataset.abbrev()
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.mode.clone(),
                r.matches.to_string(),
                format!("{:.0}", r.matches_per_sec),
                r.kv_requests.to_string(),
                r.deduped_keys.to_string(),
                r.store_bytes.to_string(),
                r.frontier_expansions.to_string(),
                r.spill_events.to_string(),
                r.peak_frontier_bytes.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "workload",
            "mode",
            "matches",
            "matches/s",
            "kv trips",
            "deduped",
            "store bytes",
            "expansions",
            "spills",
            "peak bytes",
        ],
        &table,
    );
    println!(
        "\nexpected shape: every row's match count equals the DFS baseline;\n\
         kv round trips fall as the budget grows (one batched read per\n\
         frontier level) while tight budgets spill back toward DFS-shaped\n\
         traffic — the sweep trades memory for round trips, never exactness."
    );

    if let Some(path) = args.get_str("json") {
        let mut report = BenchReport::new("budget_sweep");
        report
            .param("dataset", dataset.abbrev())
            .param("scale", scale)
            .param("workers", workers as u64)
            .param("threads", threads as u64)
            .param("tau", tau as u64)
            .param("scheduler", scheduler.name())
            .param("codec", codec.name());
        for r in &rows {
            report.push_row(r);
        }
        report.write(path).expect("write json");
    }
}
