//! Exp-1 / Table IV — efficiency of best execution plan generation
//! (Algorithm 3): relative α (cardinality estimations vs the
//! `Σ P(n, i)` bound), relative β (optimized plans generated vs `n!`),
//! and wall-clock search time, for (1) the evaluation queries q1–q9,
//! (2) cliques n = 4..10, (3) random connected pattern graphs n = 4..10.
//!
//! ```text
//! cargo run --release -p benu-bench --bin table4_exp1 -- [--random-count 1000] [--max-clique 10]
//! ```

use benu_bench::cli::Args;
use benu_bench::impl_to_json;
use benu_bench::print_table;
use benu_graph::gen;
use benu_pattern::{queries, Pattern};
use benu_plan::{GraphStatsEstimator, SearchStats};

struct Row {
    case: String,
    alpha_rel_pct: f64,
    beta_rel_pct: f64,
    time_s: f64,
}

impl_to_json!(Row {
    case,
    alpha_rel_pct,
    beta_rel_pct,
    time_s
});

fn measure(pattern: &Pattern) -> (f64, f64, f64) {
    let est = GraphStatsEstimator::generic();
    let result = benu_plan::search::best_plan(pattern, &est);
    let n = pattern.num_vertices();
    let alpha_rel = 100.0 * result.stats.alpha as f64 / SearchStats::alpha_upper_bound(n);
    let beta_rel = 100.0 * result.stats.beta as f64 / SearchStats::beta_upper_bound(n);
    (alpha_rel, beta_rel, result.stats.elapsed.as_secs_f64())
}

fn main() {
    let args = Args::parse();
    // The paper averages 1000 random patterns per n; the default here
    // is lighter so the whole suite runs in minutes (pass
    // --random-count 1000 to match the paper exactly).
    let random_count: usize = args.get("random-count", 100);
    let max_clique: usize = args.get("max-clique", 10);

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut push = |case: String, a: f64, b: f64, t: f64, rows: &mut Vec<Vec<String>>| {
        records.push(Row {
            case: case.clone(),
            alpha_rel_pct: a,
            beta_rel_pct: b,
            time_s: t,
        });
        rows.push(vec![
            case,
            format!("{a:.1}"),
            format!("{b:.2}"),
            format!("{t:.3}"),
        ]);
    };

    for (name, p) in queries::evaluation_queries() {
        let (a, b, t) = measure(&p);
        push(name.to_string(), a, b, t, &mut rows);
    }
    for n in 4..=max_clique {
        let (a, b, t) = measure(&queries::clique(n));
        push(format!("clique{n}"), a, b, t, &mut rows);
    }
    let max_random: usize = args.get("max-random", 8);
    for n in 4..=max_random.min(10) {
        // Average over random connected pattern graphs (paper: 1000 per n).
        let (mut sa, mut sb, mut st) = (0.0, 0.0, 0.0);
        for seed in 0..random_count as u64 {
            // Edge count uniform between tree (n-1) and a moderately
            // dense graph.
            let extra = (seed as usize) % (n * (n - 1) / 2 - (n - 1) + 1);
            let g = gen::random_connected(n, extra, 0xE1_0001 ^ seed);
            let edges: Vec<(usize, usize)> =
                g.edges().map(|(x, y)| (x as usize, y as usize)).collect();
            let p = Pattern::from_edges(n, &edges);
            let (a, b, t) = measure(&p);
            sa += a;
            sb += b;
            st += t;
        }
        let c = random_count as f64;
        push(
            format!("random n={n} (avg of {random_count})"),
            sa / c,
            sb / c,
            st / c,
            &mut rows,
        );
    }

    println!("\nTable IV — best execution plan generation efficiency:");
    print_table(
        &["case", "rel alpha (%)", "rel beta (%)", "time (s)"],
        &rows,
    );
    println!(
        "\npaper shape: beta/n! < 15% everywhere, < 1% for random patterns;\n\
         plan generation takes well under a second except the largest cliques."
    );
    if let Some(path) = args.get_str("json") {
        let mut report = benu_bench::report::BenchReport::new("table4_exp1");
        report
            .param("random_count", random_count as u64)
            .param("max_clique", max_clique as u64)
            .param("max_random", max_random as u64);
        for r in &records {
            report.push_row(r);
        }
        report.write(path).expect("write json");
    }
}
