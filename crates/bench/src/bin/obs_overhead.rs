//! Observability-overhead A/B — enumeration throughput with the metrics
//! registry attached vs a bare cluster, on the fig9 workload.
//!
//! The acceptance bar for `benu-obs` is < 3% throughput regression on
//! this workload. Two arms run the identical plan on identical clusters;
//! the only difference is whether an `ObsHub` is attached. Compiling the
//! workspace with `--features benu-obs/noop` turns the observed arm's
//! recording into no-ops, isolating the cost of the call sites
//! themselves; `recording` in the output says which build ran.
//!
//! ```text
//! cargo run --release -p benu-bench --bin obs_overhead -- \
//!     [--scale 0.08] [--query q5] [--dataset ok] [--iters 3] [--json out.json]
//! ```

use benu_bench::cli::Args;
use benu_bench::impl_to_json;
use benu_bench::report::BenchReport;
use benu_bench::{load_dataset, print_table};
use benu_cluster::{Cluster, ClusterConfig};
use benu_graph::datasets::Dataset;
use benu_obs::ObsHub;
use benu_pattern::queries;
use benu_plan::{ExecutionPlan, PlanBuilder};
use std::sync::Arc;
use std::time::Instant;

struct Arm {
    arm: String,
    matches: u64,
    best_wall_s: f64,
    matches_per_sec: f64,
}

impl_to_json!(Arm {
    arm,
    matches,
    best_wall_s,
    matches_per_sec
});

/// Best-of-`iters` wall time for one cluster (fresh caches per
/// iteration so both arms do the same store traffic).
fn measure(cluster: &Cluster, plan: &ExecutionPlan, iters: usize) -> (u64, f64) {
    let mut best = f64::INFINITY;
    let mut matches = 0;
    for _ in 0..iters {
        cluster.clear_caches();
        let start = Instant::now();
        let outcome = cluster.run(plan).expect("cluster run failed");
        best = best.min(start.elapsed().as_secs_f64());
        matches = outcome.total_matches;
    }
    (matches, best)
}

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 0.08);
    let iters: usize = args.get("iters", 3);
    let qname = args.get_str("query").unwrap_or("q5").to_string();
    let dataset =
        Dataset::from_abbrev(args.get_str("dataset").unwrap_or("ok")).expect("unknown dataset");
    let pattern = queries::by_name(&qname).expect("unknown query");
    let g = load_dataset(dataset, scale);
    let plan = PlanBuilder::new(&pattern)
        .graph_stats(g.num_vertices(), g.num_edges())
        .compressed(true)
        .best_plan();
    let config = || {
        ClusterConfig::builder()
            .workers(4)
            .threads_per_worker(2)
            .cache_capacity_bytes(64 << 20)
            .build()
    };

    let bare = Cluster::new(&g, config());
    let hub = Arc::new(ObsHub::new());
    let observed = Cluster::new_observed(&g, config(), Arc::clone(&hub));

    // Interleave a warm-up of each arm before timing (first-touch page
    // faults would otherwise bias whichever arm runs first).
    measure(&bare, &plan, 1);
    measure(&observed, &plan, 1);
    let (bare_matches, bare_s) = measure(&bare, &plan, iters);
    let (obs_matches, obs_s) = measure(&observed, &plan, iters);
    assert_eq!(bare_matches, obs_matches, "observation changed the count");

    let arms = [
        Arm {
            arm: "bare".to_string(),
            matches: bare_matches,
            best_wall_s: bare_s,
            matches_per_sec: benu_obs::safe_ratio(bare_matches as f64, bare_s),
        },
        Arm {
            arm: "observed".to_string(),
            matches: obs_matches,
            best_wall_s: obs_s,
            matches_per_sec: benu_obs::safe_ratio(obs_matches as f64, obs_s),
        },
    ];
    let overhead_pct = 100.0 * (benu_obs::safe_ratio(obs_s, bare_s) - 1.0);

    println!(
        "\nObservability overhead — {qname} on {} (scale {scale}, best of {iters}, recording {}):",
        dataset.abbrev(),
        if benu_obs::recording_enabled() {
            "on"
        } else {
            "noop"
        }
    );
    let rows: Vec<Vec<String>> = arms
        .iter()
        .map(|a| {
            vec![
                a.arm.clone(),
                format!("{:.4}s", a.best_wall_s),
                format!("{:.0}", a.matches_per_sec),
            ]
        })
        .collect();
    print_table(&["arm", "best wall", "matches/s"], &rows);
    println!("overhead: {overhead_pct:+.2}% wall time (bar: < 3%)");

    if let Some(path) = args.get_str("json") {
        let mut report = BenchReport::new("obs_overhead");
        report
            .param("dataset", dataset.abbrev())
            .param("scale", scale)
            .param("query", qname.as_str())
            .param("iters", iters as u64)
            .param("recording", benu_obs::recording_enabled())
            .param("overhead_pct", overhead_pct);
        for a in &arms {
            report.push_row(a);
        }
        report.write(path).expect("write json");
    }
}
