//! The unified bench report envelope (schema `benu/report-v1`).
//!
//! Every experiment binary's `--json` dump is one [`BenchReport`]: the
//! schema tag, the bench name, the parameters the run was invoked with,
//! and a list of result rows. Rows are either existing per-bin record
//! structs (anything [`ToJson`]) or [`benu_obs::Report`] trees — cluster
//! rows embed [`benu_cluster::RunOutcome::report`] so every bin exposes
//! the same run-level shape. The golden-file snapshot test
//! (`tests/report_schema.rs`) pins this schema; bump [`SCHEMA`] when
//! changing it.

use crate::json::{Json, ToJson};
use benu_obs::{Report, Value};

/// The schema tag every unified dump carries.
pub const SCHEMA: &str = "benu/report-v1";

/// One bench invocation's machine-readable output.
#[derive(Clone, Debug, Default)]
pub struct BenchReport {
    bench: String,
    params: Report,
    rows: Vec<Json>,
}

impl BenchReport {
    /// An empty report for the bench named `bench`.
    pub fn new(bench: &str) -> Self {
        BenchReport {
            bench: bench.to_string(),
            params: Report::new(),
            rows: Vec::new(),
        }
    }

    /// Records an invocation parameter (dataset, scale, seed, flags).
    pub fn param(&mut self, key: &str, value: impl Into<Value>) -> &mut Self {
        self.params.set(key, value);
        self
    }

    /// Appends a result row (any [`ToJson`] record or `Report` tree).
    pub fn push_row(&mut self, row: &(impl ToJson + ?Sized)) -> &mut Self {
        self.rows.push(row.to_json());
        self
    }

    /// Appends a row with the cluster run's unified report embedded under
    /// a `"run"` key — how cluster-driving bins expose the full
    /// per-layer breakdown next to their headline columns.
    pub fn push_row_with_run(&mut self, row: &(impl ToJson + ?Sized), run: &Report) -> &mut Self {
        let mut fields = match row.to_json() {
            Json::Object(fields) => fields,
            other => vec![("row".to_string(), other)],
        };
        fields.push(("run".to_string(), run.to_json()));
        self.rows.push(Json::Object(fields));
        self
    }

    /// Number of rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the canonical envelope.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("schema".to_string(), Json::Str(SCHEMA.to_string())),
            ("bench".to_string(), Json::Str(self.bench.clone())),
            ("params".to_string(), self.params.to_json()),
            ("rows".to_string(), Json::Array(self.rows.clone())),
        ])
    }

    /// Writes the envelope as pretty JSON to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().render_pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_has_schema_bench_params_rows() {
        let mut report = BenchReport::new("demo");
        report.param("scale", 0.5).param("dataset", "as");
        let mut row = Report::new();
        row.set("matches", 42u64);
        report.push_row(&row);
        assert_eq!(report.len(), 1);
        let json = report.to_json().render_pretty();
        assert!(json.contains("\"schema\": \"benu/report-v1\""));
        assert!(json.contains("\"bench\": \"demo\""));
        assert!(json.contains("\"scale\": 0.5"));
        assert!(json.contains("\"matches\": 42"));
        // Top-level key order is fixed.
        let schema_pos = json.find("\"schema\"").unwrap();
        let bench_pos = json.find("\"bench\"").unwrap();
        let params_pos = json.find("\"params\"").unwrap();
        let rows_pos = json.find("\"rows\"").unwrap();
        assert!(schema_pos < bench_pos && bench_pos < params_pos && params_pos < rows_pos);
    }

    #[test]
    fn run_subtree_rides_along_with_the_row() {
        let mut report = BenchReport::new("demo");
        let mut row = Report::new();
        row.set("variant", "tau");
        let mut run = Report::new();
        run.set("total_matches", 99u64);
        report.push_row_with_run(&row, &run);
        let json = report.to_json().render_pretty();
        assert!(json.contains("\"variant\": \"tau\""));
        assert!(json.contains("\"run\": {"));
        assert!(json.contains("\"total_matches\": 99"));
    }

    #[test]
    fn obs_report_values_round_trip_to_json() {
        let mut r = Report::new();
        r.set("flag", true);
        r.set("count", 7u64);
        r.set("delta", -3i64);
        r.set("ratio", 0.25);
        r.set("name", "x");
        r.set("list", Value::List(vec![Value::UInt(1), Value::UInt(2)]));
        let mut inner = Report::new();
        inner.set("k", 9u64);
        r.set_tree("tree", inner);
        let json = r.to_json().render_pretty();
        for needle in [
            "\"flag\": true",
            "\"count\": 7",
            "\"delta\": -3",
            "\"ratio\": 0.25",
            "\"name\": \"x\"",
            "\"k\": 9",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }
}
