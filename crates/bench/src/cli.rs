//! Minimal flag parsing shared by the experiment binaries (no external
//! CLI dependency — the offline crate budget is spent on the substrate).

use benu_cluster::SchedulerKind;
use std::collections::HashMap;

/// Parsed command line: `--key value` flags plus positional arguments.
#[derive(Clone, Debug, Default)]
pub struct Args {
    flags: HashMap<String, String>,
    positional: Vec<String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn from_iter(iter: impl IntoIterator<Item = String>) -> Self {
        let mut args = Args::default();
        let mut it = iter.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let value = match it.peek() {
                    Some(v) if !v.starts_with("--") => it.next().unwrap(),
                    _ => "true".to_string(),
                };
                args.flags.insert(key.to_string(), value);
            } else {
                args.positional.push(tok);
            }
        }
        args
    }

    /// A typed flag with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.flags
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A string flag.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A boolean flag (`--foo` or `--foo true`).
    pub fn has(&self, key: &str) -> bool {
        matches!(
            self.flags.get(key).map(String::as_str),
            Some("true") | Some("1")
        )
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// The `--scheduler` flag parsed into a scheduling policy, or `None`
    /// when absent (binaries pick their own default or run an A/B).
    ///
    /// # Panics
    ///
    /// Panics on an unknown policy name, listing the accepted ones.
    pub fn scheduler(&self) -> Option<SchedulerKind> {
        self.get_str("scheduler").map(|s| {
            s.parse()
                .unwrap_or_else(|e: String| panic!("--scheduler: {e}"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::from_iter(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_typed_flags() {
        let a = parse("--scale 0.5 --workers 8 q5");
        assert_eq!(a.get("scale", 1.0f64), 0.5);
        assert_eq!(a.get("workers", 4usize), 8);
        assert_eq!(a.get("missing", 7u32), 7);
        assert_eq!(a.positional(), &["q5".to_string()]);
    }

    #[test]
    fn scheduler_flag_parses_into_a_kind() {
        assert_eq!(parse("").scheduler(), None);
        assert_eq!(
            parse("--scheduler work-stealing").scheduler(),
            Some(SchedulerKind::WorkStealing)
        );
        assert_eq!(
            parse("--scheduler static").scheduler(),
            Some(SchedulerKind::Static)
        );
    }

    #[test]
    #[should_panic(expected = "unknown scheduler")]
    fn unknown_scheduler_is_rejected() {
        parse("--scheduler lifo").scheduler();
    }

    #[test]
    fn bare_flags_are_boolean() {
        let a = parse("--full --json out.json");
        assert!(a.has("full"));
        assert_eq!(a.get_str("json"), Some("out.json"));
        assert!(!a.has("absent"));
    }
}
