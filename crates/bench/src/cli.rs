//! Minimal flag parsing shared by the experiment binaries (no external
//! CLI dependency — the offline crate budget is spent on the substrate).

use benu_cluster::{CodecKind, ExecMode, SchedulerKind};
use benu_fault::FaultPlan;
use std::collections::HashMap;

/// Parsed command line: `--key value` flags plus positional arguments.
#[derive(Clone, Debug, Default)]
pub struct Args {
    flags: HashMap<String, String>,
    positional: Vec<String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    // Deliberately not the `FromIterator` trait: parsing can't be
    // expressed through `collect()` and the inherent name reads better
    // at call sites.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(iter: impl IntoIterator<Item = String>) -> Self {
        let mut args = Args::default();
        let mut it = iter.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let value = match it.peek() {
                    Some(v) if !v.starts_with("--") => it.next().unwrap(),
                    _ => "true".to_string(),
                };
                args.flags.insert(key.to_string(), value);
            } else {
                args.positional.push(tok);
            }
        }
        args
    }

    /// A typed flag with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.flags
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A string flag.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A boolean flag (`--foo` or `--foo true`).
    pub fn has(&self, key: &str) -> bool {
        matches!(
            self.flags.get(key).map(String::as_str),
            Some("true") | Some("1")
        )
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// The `--scheduler` flag parsed into a scheduling policy, or `None`
    /// when absent (binaries pick their own default or run an A/B).
    ///
    /// # Panics
    ///
    /// Panics on an unknown policy name, listing the accepted ones.
    pub fn scheduler(&self) -> Option<SchedulerKind> {
        self.get_str("scheduler").map(|s| {
            s.parse()
                .unwrap_or_else(|e: String| panic!("--scheduler: {e}"))
        })
    }

    /// Builds the fault plan for one point of a fault sweep: the shared
    /// `--fault-seed`, optional `--crash worker:tasks` and optional
    /// `--outage shard:from_pass[,shard:from_pass...]` flags combined
    /// with the point's transient fault rate. Returns `None` — run
    /// faults-off — for a zero rate with no crash or outage configured.
    ///
    /// # Panics
    ///
    /// Panics on a malformed `--crash` or `--outage` spec.
    pub fn fault_plan(&self, transient_rate: f64) -> Option<FaultPlan> {
        let crash = self.get_str("crash").map(|spec| {
            let parsed = spec
                .split_once(':')
                .and_then(|(w, n)| Some((w.parse::<usize>().ok()?, n.parse::<u64>().ok()?)));
            parsed.unwrap_or_else(|| panic!("--crash expects worker:tasks, got {spec:?}"))
        });
        let outages = self.outages();
        if transient_rate == 0.0 && crash.is_none() && outages.is_empty() {
            return None;
        }
        let mut builder =
            FaultPlan::builder(self.get("fault-seed", 0u64)).transient_rate(transient_rate);
        if let Some((worker, after)) = crash {
            builder = builder.crash(worker, after);
        }
        for (shard, from_pass) in outages {
            builder = builder.shard_outage(shard, from_pass);
        }
        Some(builder.build())
    }

    /// The `--exec-mode` flag parsed into an [`ExecMode`], or `None`
    /// when absent (binaries default to DFS or sweep both).
    ///
    /// # Panics
    ///
    /// Panics on an unknown mode name, listing the accepted ones.
    pub fn exec_mode(&self) -> Option<ExecMode> {
        self.get_str("exec-mode").map(|s| {
            s.parse()
                .unwrap_or_else(|e: String| panic!("--exec-mode: {e}"))
        })
    }

    /// The `--codec` flag parsed into a [`CodecKind`], or `None` when
    /// absent (binaries default to the raw codec or sweep both).
    ///
    /// # Panics
    ///
    /// Panics on an unknown codec name, listing the accepted ones.
    pub fn codec(&self) -> Option<CodecKind> {
        self.get_str("codec")
            .map(|s| s.parse().unwrap_or_else(|e: String| panic!("--codec: {e}")))
    }

    /// The `--memory-budget` flag parsed into bytes, accepting bare
    /// numbers or `k`/`m`/`g` suffixes (`64k`, `1m`); `0` means
    /// unbounded. `None` when absent.
    ///
    /// # Panics
    ///
    /// Panics on a malformed size.
    pub fn memory_budget_bytes(&self) -> Option<usize> {
        self.get_str("memory-budget").map(|s| {
            parse_bytes(s).unwrap_or_else(|| {
                panic!("--memory-budget expects bytes with optional k/m/g suffix, got {s:?}")
            })
        })
    }

    /// The `--outage` flag parsed into `(shard, from_pass)` pairs
    /// (comma-separated `shard:from_pass` entries), empty when absent.
    ///
    /// # Panics
    ///
    /// Panics on a malformed spec.
    pub fn outages(&self) -> Vec<(usize, u32)> {
        self.get_str("outage")
            .map(|spec| {
                spec.split(',')
                    .map(|entry| {
                        entry
                            .split_once(':')
                            .and_then(|(s, p)| {
                                Some((s.parse::<usize>().ok()?, p.parse::<u32>().ok()?))
                            })
                            .unwrap_or_else(|| {
                                panic!("--outage expects shard:from_pass[,...], got {entry:?}")
                            })
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// `"64k"` → 65536; bare numbers are bytes; case-insensitive suffix.
fn parse_bytes(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, shift) = match s.char_indices().last()? {
        (i, 'k') | (i, 'K') => (&s[..i], 10),
        (i, 'm') | (i, 'M') => (&s[..i], 20),
        (i, 'g') | (i, 'G') => (&s[..i], 30),
        _ => (s, 0),
    };
    digits.parse::<usize>().ok()?.checked_shl(shift)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::from_iter(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_typed_flags() {
        let a = parse("--scale 0.5 --workers 8 q5");
        assert_eq!(a.get("scale", 1.0f64), 0.5);
        assert_eq!(a.get("workers", 4usize), 8);
        assert_eq!(a.get("missing", 7u32), 7);
        assert_eq!(a.positional(), &["q5".to_string()]);
    }

    #[test]
    fn scheduler_flag_parses_into_a_kind() {
        assert_eq!(parse("").scheduler(), None);
        assert_eq!(
            parse("--scheduler work-stealing").scheduler(),
            Some(SchedulerKind::WorkStealing)
        );
        assert_eq!(
            parse("--scheduler static").scheduler(),
            Some(SchedulerKind::Static)
        );
    }

    #[test]
    #[should_panic(expected = "unknown scheduler")]
    fn unknown_scheduler_is_rejected() {
        parse("--scheduler lifo").scheduler();
    }

    #[test]
    fn fault_flags_build_a_plan() {
        assert!(parse("").fault_plan(0.0).is_none(), "faults-off point");
        let plan = parse("--fault-seed 9").fault_plan(0.01).unwrap();
        assert_eq!(plan.seed(), 9);
        assert!(plan.has_faults());
        let crashing = parse("--crash 2:5").fault_plan(0.0).unwrap();
        assert_eq!(crashing.crash_after(2), Some(5));
        assert_eq!(crashing.crash_after(0), None);
    }

    #[test]
    #[should_panic(expected = "--crash expects worker:tasks")]
    fn malformed_crash_spec_is_rejected() {
        parse("--crash five").fault_plan(0.0);
    }

    #[test]
    fn outage_flags_build_a_plan() {
        assert_eq!(parse("").outages(), vec![]);
        let plan = parse("--outage 1:2").fault_plan(0.0).unwrap();
        assert!(plan.outage_at(1, 2) && !plan.outage_at(1, 1));
        let multi = parse("--outage 0:1,2:3").fault_plan(0.0).unwrap();
        assert_eq!(multi.outage_shards(), vec![0, 2]);
        assert!(multi.outage_at(0, 1) && multi.outage_at(2, 3));
    }

    #[test]
    #[should_panic(expected = "--outage expects shard:from_pass")]
    fn malformed_outage_spec_is_rejected() {
        parse("--outage zero").fault_plan(0.0);
    }

    #[test]
    fn exec_mode_flag_parses_into_a_mode() {
        assert_eq!(parse("").exec_mode(), None);
        assert_eq!(parse("--exec-mode dfs").exec_mode(), Some(ExecMode::Dfs));
        assert_eq!(
            parse("--exec-mode hybrid").exec_mode(),
            Some(ExecMode::Hybrid)
        );
    }

    #[test]
    #[should_panic(expected = "unknown exec mode")]
    fn unknown_exec_mode_is_rejected() {
        parse("--exec-mode bfs").exec_mode();
    }

    #[test]
    fn codec_flag_parses_into_a_kind() {
        assert_eq!(parse("").codec(), None);
        assert_eq!(parse("--codec raw-u32").codec(), Some(CodecKind::RawU32));
        assert_eq!(
            parse("--codec delta-varint").codec(),
            Some(CodecKind::DeltaVarint)
        );
    }

    #[test]
    #[should_panic(expected = "unknown codec")]
    fn unknown_codec_is_rejected() {
        parse("--codec gzip").codec();
    }

    #[test]
    fn memory_budget_accepts_suffixes() {
        assert_eq!(parse("").memory_budget_bytes(), None);
        assert_eq!(parse("--memory-budget 0").memory_budget_bytes(), Some(0));
        assert_eq!(
            parse("--memory-budget 4096").memory_budget_bytes(),
            Some(4096)
        );
        assert_eq!(
            parse("--memory-budget 64k").memory_budget_bytes(),
            Some(64 << 10)
        );
        assert_eq!(
            parse("--memory-budget 2M").memory_budget_bytes(),
            Some(2 << 20)
        );
        assert_eq!(
            parse("--memory-budget 1g").memory_budget_bytes(),
            Some(1 << 30)
        );
    }

    #[test]
    #[should_panic(expected = "--memory-budget expects")]
    fn malformed_memory_budget_is_rejected() {
        parse("--memory-budget lots").memory_budget_bytes();
    }

    #[test]
    fn bare_flags_are_boolean() {
        let a = parse("--full --json out.json");
        assert!(a.has("full"));
        assert_eq!(a.get_str("json"), Some("out.json"));
        assert!(!a.has("absent"));
    }
}
