//! Golden-file snapshot of the unified report schema.
//!
//! A tiny fully-deterministic run — complete graph, triangle query, one
//! worker, one thread, static scheduler, fixed fault seed — is rendered
//! through the whole reporting stack (`RunOutcome::report` +
//! `ObsHub::report` in deterministic mode, wrapped in the `BenchReport`
//! envelope) and byte-compared against `tests/golden/report_schema.json`.
//! Any schema change — a renamed key, a reordered field, a new metric in
//! the deterministic view — fails this test and forces a conscious
//! golden update (run with `UPDATE_GOLDEN=1` to regenerate, then review
//! the diff).

use benu_bench::report::BenchReport;
use benu_cluster::{Cluster, ClusterConfig, SchedulerKind};
use benu_fault::FaultPlan;
use benu_graph::gen;
use benu_obs::{ObsHub, ReportMode};
use benu_pattern::queries;
use benu_plan::PlanBuilder;
use std::sync::Arc;

/// One deterministic faulted run rendered to the canonical JSON text.
fn render_snapshot() -> String {
    let g = gen::complete(6);
    let pattern = queries::triangle();
    let plan = PlanBuilder::new(&pattern)
        .graph_stats(g.num_vertices(), g.num_edges())
        .compressed(true)
        .best_plan();
    let hub = Arc::new(ObsHub::new());
    let mut cluster = Cluster::new_observed(
        &g,
        ClusterConfig::builder()
            .workers(1)
            .threads_per_worker(1)
            .scheduler(SchedulerKind::Static)
            .build(),
        Arc::clone(&hub),
    );
    cluster.set_fault_plan(Some(FaultPlan::builder(42).transient_rate(0.03).build()));
    let outcome = cluster.run(&plan).expect("deterministic run failed");

    let mut run = outcome.report(ReportMode::Deterministic);
    run.merge(hub.report(ReportMode::Deterministic));
    let mut report = BenchReport::new("report_schema");
    report
        .param("graph", "complete6")
        .param("query", "triangle")
        .param("fault_seed", 42u64)
        .param("transient_rate", 0.03);
    report.push_row(&run);
    report.to_json().render_pretty()
}

#[test]
fn unified_report_matches_golden_file() {
    let rendered = render_snapshot();
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/report_schema.json"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).expect("write golden");
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing — run once with UPDATE_GOLDEN=1 to seed it");
    assert_eq!(
        rendered, golden,
        "unified report schema drifted from the golden file; if the \
         change is intentional, regenerate with UPDATE_GOLDEN=1 and \
         review the diff"
    );
}

#[test]
fn snapshot_is_byte_identical_across_executions() {
    assert_eq!(render_snapshot(), render_snapshot());
}

#[test]
fn snapshot_carries_every_layers_subtree() {
    let rendered = render_snapshot();
    for needle in [
        "\"schema\": \"benu/report-v1\"",
        "\"engine\"",
        "\"store\"",
        "\"workers\"",
        "\"recovery\"",
        "\"metrics\"",
        "\"trace\"",
        "\"cache\"",
        "\"exec_mode\"",
        "\"pool\"",
        "\"frontier\"",
        "\"deduped_keys\"",
    ] {
        assert!(rendered.contains(needle), "missing {needle}");
    }
}
