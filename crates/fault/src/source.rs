//! The fault-injecting [`DataSource`] decorator.
//!
//! [`FaultingDataSource`] wraps any engine data source and replays the
//! fault plan *at the source boundary*, retrying internally with the
//! policy's capped backoff. Because [`DataSource`] is infallible by
//! contract, recovery happens inside the decorator; the engine above it
//! runs completely unmodified — which is exactly the idempotency argument
//! the cluster's task-level recovery rests on, exercised at engine scope.

use crate::plan::FaultPlan;
use crate::retry::RetryPolicy;
use benu_engine::DataSource;
use benu_graph::{AdjSet, VertexId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A [`DataSource`] with a [`FaultPlan`] and internal retry in front of
/// it.
pub struct FaultingDataSource<S> {
    inner: S,
    plan: Arc<FaultPlan>,
    shards: usize,
    policy: RetryPolicy,
    faults: AtomicU64,
    retries: AtomicU64,
    backoff_nanos: AtomicU64,
}

impl<S: DataSource> FaultingDataSource<S> {
    /// Wraps `inner`, mapping vertices onto `shards` fault domains by id
    /// (mirroring the store's round-robin sharding).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or the policy is invalid.
    pub fn new(inner: S, plan: Arc<FaultPlan>, shards: usize, policy: RetryPolicy) -> Self {
        assert!(shards >= 1, "need at least one fault domain");
        policy.validate();
        FaultingDataSource {
            inner,
            plan,
            shards,
            policy,
            faults: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            backoff_nanos: AtomicU64::new(0),
        }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Faults injected so far.
    pub fn faults(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Retries issued so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Total virtual backoff accumulated by the internal retries.
    pub fn virtual_backoff(&self) -> Duration {
        Duration::from_nanos(self.backoff_nanos.load(Ordering::Relaxed))
    }

    /// Runs the retry loop for `v`; returns once an attempt is clean.
    ///
    /// # Panics
    ///
    /// Panics if every attempt faults (the infallible [`DataSource`]
    /// contract leaves no error channel; at any rate < 1 this needs
    /// `max_attempts` consecutive independent faults).
    fn admit(&self, v: VertexId) {
        let shard = v as usize % self.shards;
        for attempt in 0..self.policy.max_attempts {
            if self.plan.fault_for(shard, v as u64, attempt).is_none() {
                return;
            }
            self.faults.fetch_add(1, Ordering::Relaxed);
            if attempt + 1 >= self.policy.max_attempts {
                panic!(
                    "shard {shard} unavailable for vertex {v}: {} attempts exhausted",
                    self.policy.max_attempts
                );
            }
            self.retries.fetch_add(1, Ordering::Relaxed);
            let wait = self.policy.backoff(self.plan.seed(), v as u64, attempt + 1);
            self.backoff_nanos
                .fetch_add(wait.as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

impl<S: DataSource> DataSource for FaultingDataSource<S> {
    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    fn get_adj(&self, v: VertexId) -> Arc<AdjSet> {
        self.admit(v);
        self.inner.get_adj(v)
    }

    fn get_adj_batch(&self, vs: &[VertexId]) -> Vec<Arc<AdjSet>> {
        for &v in vs {
            self.admit(v);
        }
        self.inner.get_adj_batch(vs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_engine::InMemorySource;
    use benu_graph::gen;

    fn source(rate: f64, seed: u64) -> FaultingDataSource<InMemorySource> {
        let g = gen::complete(6);
        FaultingDataSource::new(
            InMemorySource::from_graph(&g),
            Arc::new(FaultPlan::builder(seed).transient_rate(rate).build()),
            4,
            RetryPolicy::default(),
        )
    }

    #[test]
    fn faulty_source_still_answers_correctly() {
        let src = source(0.4, 9);
        for v in 0..6u32 {
            assert_eq!(src.get_adj(v).len(), 5);
        }
        assert!(src.faults() > 0, "rate 0.4 over 6 gets must fault");
        assert_eq!(src.retries(), src.faults(), "every fault was retried");
        assert!(src.virtual_backoff() > Duration::ZERO);
    }

    #[test]
    fn engine_counts_are_fault_invariant() {
        use benu_engine::{CompiledPlan, CountingConsumer, LocalEngine};
        use benu_pattern::queries;
        use benu_plan::PlanBuilder;
        let g = gen::erdos_renyi_gnm(30, 90, 4);
        let plan = PlanBuilder::new(&queries::triangle()).best_plan();
        let clean = benu_engine::count_embeddings(&plan, &g);
        let src = FaultingDataSource::new(
            InMemorySource::from_graph(&g),
            Arc::new(FaultPlan::builder(17).transient_rate(0.2).build()),
            4,
            RetryPolicy::default(),
        );
        let compiled = CompiledPlan::compile(&plan);
        let order = benu_graph::TotalOrder::new(&g);
        let mut engine = LocalEngine::new(&compiled, &src, &order);
        let mut consumer = CountingConsumer::default();
        let got = engine.run_all_vertices(&mut consumer).matches;
        assert_eq!(got, clean, "fault injection must not change results");
        assert!(src.faults() > 0);
    }

    #[test]
    fn benign_plan_never_retries() {
        let src = source(0.0, 0);
        for v in 0..6u32 {
            src.get_adj(v);
        }
        assert_eq!(src.faults(), 0);
        assert_eq!(src.retries(), 0);
    }

    #[test]
    #[should_panic(expected = "attempts exhausted")]
    fn certain_faults_exhaust_attempts() {
        let g = gen::complete(3);
        let src = FaultingDataSource::new(
            InMemorySource::from_graph(&g),
            Arc::new(FaultPlan::builder(0).transient_rate(0.999).build()),
            1,
            RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            },
        );
        for v in 0..3u32 {
            src.get_adj(v);
        }
    }
}
