//! The fault-injecting store decorator.
//!
//! [`FaultingStore`] wraps a [`KvStore`] and consults the [`FaultPlan`]
//! *before* touching it: a faulted round trip fails without reaching the
//! store, so the store's request/byte accounting keeps reconciling with
//! the transport's (failed attempts transfer nothing). The wrapped API is
//! attempt-aware — callers pass the attempt number so the plan can make
//! independent decisions per retry.
//!
//! # Failover routing
//!
//! When the wrapped store is replicated, every request is *routed*: the
//! decorator walks the key's placement ring (primary first, mirrors in
//! order) and serves from the first replica the plan lets answer. A
//! faulted or dark primary is therefore masked by a healthy mirror
//! without the caller ever seeing an error — only when *every* replica
//! refuses does the request fail, and the error kind then tells the
//! retry layer whether waiting can help ([`FaultKind::Outage`] means all
//! copies are persistently dark, so it cannot). The routing decision is
//! a pure function of `(plan, key, attempt, pass)`, keeping failover as
//! replayable as every other fault decision.

use crate::plan::{FaultError, FaultKind, FaultPlan};
use benu_graph::{AdjSet, VertexId};
use benu_kvstore::{BatchOutcome, CorruptValue, KvStore};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Why a routed read failed: either the fault plan refused every
/// replica (retryable unless the kind is [`FaultKind::Outage`]), or the
/// serving replica's bytes failed to decode (never retryable — every
/// replica mirrors the same value, so a corrupt read cannot be waited
/// out).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// Every replica refused per the fault plan.
    Fault(FaultError),
    /// The serving replica's stored bytes are damaged.
    Corrupt(CorruptValue),
}

impl StoreError {
    /// The injected-fault view of the error, if that is what it is.
    pub fn as_fault(&self) -> Option<&FaultError> {
        match self {
            StoreError::Fault(err) => Some(err),
            StoreError::Corrupt(_) => None,
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Fault(err) => err.fmt(f),
            StoreError::Corrupt(err) => err.fmt(f),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<FaultError> for StoreError {
    fn from(err: FaultError) -> Self {
        StoreError::Fault(err)
    }
}

impl From<CorruptValue> for StoreError {
    fn from(err: CorruptValue) -> Self {
        StoreError::Corrupt(err)
    }
}

/// A [`KvStore`] with a [`FaultPlan`] in front of it.
pub struct FaultingStore {
    store: Arc<KvStore>,
    plan: Arc<FaultPlan>,
    injected: AtomicU64,
    /// The execution pass requests are currently attributed to (1-based;
    /// advanced by the runtime at pass barriers, so no request is ever
    /// in flight across a change).
    pass: AtomicU32,
    failover_attempts: AtomicU64,
    failover_reads: AtomicU64,
}

/// What one placement scan decided: which replica serves (or why none
/// can), plus how many dead/faulted replicas the scan stepped past.
struct Scan {
    outcome: Result<usize, FaultError>,
    skipped: u64,
}

impl FaultingStore {
    /// Puts `plan` in front of `store`.
    pub fn new(store: Arc<KvStore>, plan: Arc<FaultPlan>) -> Self {
        FaultingStore {
            store,
            plan,
            injected: AtomicU64::new(0),
            pass: AtomicU32::new(1),
            failover_attempts: AtomicU64::new(0),
            failover_reads: AtomicU64::new(0),
        }
    }

    /// The wrapped store.
    pub fn store(&self) -> &Arc<KvStore> {
        &self.store
    }

    /// The plan driving the injection.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }

    /// Faults injected through this decorator so far. Counts errors that
    /// actually surfaced to the caller — a primary fault masked by a
    /// replica read shows up in [`FaultingStore::failover_attempts`]
    /// instead, keeping this counter reconciled with the retry layer's.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Times the router stepped past a dead or faulted replica to try
    /// the next one in ring order.
    pub fn failover_attempts(&self) -> u64 {
        self.failover_attempts.load(Ordering::Relaxed)
    }

    /// Round trips served by a non-primary replica.
    pub fn failover_reads(&self) -> u64 {
        self.failover_reads.load(Ordering::Relaxed)
    }

    /// Advances the pass outage decisions are evaluated against. Called
    /// by the runtime at pass barriers (no request is in flight), so a
    /// relaxed store is enough.
    pub fn set_pass(&self, pass: u32) {
        self.pass.store(pass, Ordering::Relaxed);
    }

    /// The pass requests are currently attributed to (1-based).
    pub fn pass(&self) -> u32 {
        self.pass.load(Ordering::Relaxed)
    }

    /// Walks `primary`'s placement ring and decides which replica (if
    /// any) serves the request keyed by `key` at `(attempt, pass)`.
    /// Pure: no counters are touched, so the latency-penalty paths can
    /// re-run the same scan without double counting.
    ///
    /// The error carried home when every replica refuses is retryable
    /// (transient/timeout) if *any* replica merely faulted this attempt,
    /// and [`FaultKind::Outage`] only when every copy is persistently
    /// dark — the one case where retrying cannot help.
    fn scan(&self, primary: usize, key: u64, attempt: u32, pass: u32) -> Scan {
        let num_shards = self.store.num_shards();
        let mut skipped = 0u64;
        let mut retryable: Option<FaultError> = None;
        let mut last: Option<FaultError> = None;
        for offset in 0..self.store.replication() {
            let shard = (primary + offset) % num_shards;
            let fault = if self.plan.outage_at(shard, pass) {
                Some(FaultKind::Outage)
            } else {
                self.plan.fault_for(shard, key, attempt)
            };
            match fault {
                None => {
                    return Scan {
                        outcome: Ok(offset),
                        skipped,
                    }
                }
                Some(kind) => {
                    let err = FaultError { kind, shard };
                    if kind != FaultKind::Outage && retryable.is_none() {
                        retryable = Some(err);
                    }
                    last = Some(err);
                    skipped += 1;
                }
            }
        }
        Scan {
            outcome: Err(retryable
                .or(last)
                .expect("replication >= 1 guarantees at least one probe")),
            skipped,
        }
    }

    /// Scan plus accounting: failover counters reflect served requests,
    /// `injected` reflects surfaced errors.
    fn route(
        &self,
        primary: usize,
        key: u64,
        attempt: u32,
        pass: u32,
    ) -> Result<usize, FaultError> {
        let scan = self.scan(primary, key, attempt, pass);
        match scan.outcome {
            Ok(offset) => {
                if scan.skipped > 0 {
                    self.failover_attempts
                        .fetch_add(scan.skipped, Ordering::Relaxed);
                }
                if offset > 0 {
                    self.failover_reads.fetch_add(1, Ordering::Relaxed);
                }
                Ok(offset)
            }
            Err(err) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Err(err)
            }
        }
    }

    /// The routing decision for the `attempt`-th try at fetching `v`,
    /// *without* touching the store: the replica offset that serves, or
    /// the fault that refuses every replica (retryable unless its kind
    /// is [`FaultKind::Outage`]). Failover/injection counters are
    /// booked. Public so decision-only consumers — e.g. a serving layer
    /// that fronts the store with its own cache — can evaluate the
    /// plan's verdict on every *logical* access, independent of what
    /// their cache happens to hold, and keep failure outcomes a pure
    /// function of the seed.
    pub fn route_for(&self, v: VertexId, attempt: u32) -> Result<usize, FaultError> {
        let primary = self.store.shard_of(v);
        self.route(primary, v as u64, attempt, self.pass())
    }

    /// The `attempt`-th try at fetching `v`, returning the decoded set
    /// together with the wire bytes it cost. `Ok(None)` means the
    /// vertex genuinely does not exist (a permanent condition —
    /// retrying cannot help); [`StoreError::Fault`] is an injected
    /// fault, retryable unless its kind is [`FaultKind::Outage`] (every
    /// replica persistently dark); [`StoreError::Corrupt`] means the
    /// serving replica's bytes are rotten — also permanent, since every
    /// replica mirrors the same value.
    pub fn get(&self, v: VertexId, attempt: u32) -> Result<Option<(Arc<AdjSet>, u64)>, StoreError> {
        let offset = self.route_for(v, attempt)?;
        Ok(self.store.try_get_replica(v, offset)?)
    }

    /// The per-primary-group routing decision of a batched multi-get
    /// over `keys`, *without* touching the store: `route[primary]` is
    /// the replica offset serving that group. Decisions are keyed by
    /// the smallest vertex primarily owned by each shard; if any group
    /// cannot be served from any replica the whole batch fails as a
    /// unit (an all-dark group makes it hopeless — [`FaultKind::Outage`]
    /// — otherwise the first retryable error is carried home).
    /// Failover/injection counters are booked.
    pub fn route_many(&self, keys: &[VertexId], attempt: u32) -> Result<Vec<usize>, FaultError> {
        let pass = self.pass();
        let mut route: Vec<usize> = vec![0; self.store.num_shards()];
        let mut skipped = 0u64;
        let mut failover_groups = 0u64;
        let mut retryable: Option<FaultError> = None;
        let mut hopeless: Option<FaultError> = None;
        for (primary, key) in touched_shards(&self.store, keys) {
            let scan = self.scan(primary, key, attempt, pass);
            match scan.outcome {
                Ok(offset) => {
                    skipped += scan.skipped;
                    if offset > 0 {
                        failover_groups += 1;
                    }
                    route[primary] = offset;
                }
                // An all-dark group makes the whole batch hopeless this
                // pass; otherwise keep the first retryable error.
                Err(err) if err.kind == FaultKind::Outage => hopeless = hopeless.or(Some(err)),
                Err(err) => retryable = retryable.or(Some(err)),
            }
        }
        if let Some(err) = hopeless.or(retryable) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(err);
        }
        if skipped > 0 {
            self.failover_attempts.fetch_add(skipped, Ordering::Relaxed);
        }
        if failover_groups > 0 {
            self.failover_reads
                .fetch_add(failover_groups, Ordering::Relaxed);
        }
        Ok(route)
    }

    /// The `attempt`-th try at a batched multi-get: the
    /// [`FaultingStore::route_many`] decision followed by the actual
    /// reads, regrouped by serving shard — a failed-over batch still
    /// costs one round trip per surviving shard touched.
    pub fn get_many(&self, keys: &[VertexId], attempt: u32) -> Result<BatchOutcome, StoreError> {
        let route = self.route_many(keys, attempt)?;
        Ok(self
            .store
            .try_get_many_routed(keys, |primary| route[primary])?)
    }

    /// The extra virtual latency a successful round trip to `shard` pays
    /// (zero for healthy shards).
    pub fn latency_penalty(&self, shard: usize) -> Duration {
        self.plan.latency_penalty(shard)
    }

    /// The slow-shard penalty of the successful fetch of `v` at
    /// `attempt`, charged against the replica that actually served it —
    /// failing over away from a slow-and-faulty primary also escapes its
    /// latency. Re-runs the (pure) routing scan, so it must be called
    /// with the same `attempt` as the fetch it prices.
    pub fn latency_penalty_routed(&self, v: VertexId, attempt: u32) -> Duration {
        let primary = self.store.shard_of(v);
        match self.scan(primary, v as u64, attempt, self.pass()).outcome {
            Ok(offset) => self
                .plan
                .latency_penalty(self.store.replica_shard(v, offset)),
            Err(_) => Duration::ZERO,
        }
    }

    /// The total slow-shard penalty of a successful batch over `keys`
    /// (one round trip per touched shard).
    pub fn batch_latency_penalty(&self, keys: &[VertexId]) -> Duration {
        touched_shards(&self.store, keys)
            .into_iter()
            .map(|(shard, _)| self.plan.latency_penalty(shard))
            .sum()
    }

    /// Routed variant of [`FaultingStore::batch_latency_penalty`]: each
    /// primary-shard group pays the penalty of the replica that served
    /// it at `attempt`.
    pub fn batch_latency_penalty_routed(&self, keys: &[VertexId], attempt: u32) -> Duration {
        let pass = self.pass();
        let num_shards = self.store.num_shards();
        touched_shards(&self.store, keys)
            .into_iter()
            .map(
                |(primary, key)| match self.scan(primary, key, attempt, pass).outcome {
                    Ok(offset) => self.plan.latency_penalty((primary + offset) % num_shards),
                    Err(_) => Duration::ZERO,
                },
            )
            .sum()
    }
}

/// The distinct *primary* shards a batch touches, each paired with the
/// smallest vertex primarily owned by it (the batch's deterministic
/// per-group decision key; failover may serve a group elsewhere).
fn touched_shards(store: &KvStore, keys: &[VertexId]) -> Vec<(usize, u64)> {
    let mut min_key: Vec<Option<u64>> = vec![None; store.num_shards()];
    for &v in keys {
        let s = store.shard_of(v);
        let k = v as u64;
        min_key[s] = Some(min_key[s].map_or(k, |m: u64| m.min(k)));
    }
    min_key
        .into_iter()
        .enumerate()
        .filter_map(|(s, k)| k.map(|k| (s, k)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_graph::gen;

    fn store(shards: usize) -> Arc<KvStore> {
        Arc::new(KvStore::from_graph(&gen::complete(8), shards))
    }

    #[test]
    fn benign_plan_is_a_passthrough() {
        let s = store(2);
        let f = FaultingStore::new(Arc::clone(&s), Arc::new(FaultPlan::benign(0)));
        let (adj, wire) = f.get(0, 0).unwrap().unwrap();
        assert_eq!(adj.len(), 7);
        assert_eq!(wire, 1 + 7 * 4, "tagged raw-u32 wire bytes");
        assert!(f.get(99, 0).unwrap().is_none(), "missing stays missing");
        let batch = f.get_many(&[0, 1, 2], 0).unwrap();
        assert_eq!(batch.values.len(), 3);
        assert_eq!(f.injected(), 0);
    }

    #[test]
    fn injected_faults_never_touch_the_store() {
        let s = store(1);
        let plan = Arc::new(FaultPlan::builder(11).transient_rate(0.9).build());
        let f = FaultingStore::new(Arc::clone(&s), plan);
        let mut faults = 0;
        for v in 0..8u32 {
            if f.get(v, 0).is_err() {
                faults += 1;
            }
        }
        assert!(faults > 0, "rate 0.9 must fault something");
        assert_eq!(f.injected(), faults);
        // The store only accounted the successful fetches.
        assert_eq!(s.stats().requests, 8 - faults);
    }

    #[test]
    fn batch_faults_fail_as_a_unit() {
        let s = store(4);
        let plan = Arc::new(FaultPlan::builder(2).transient_rate(0.5).build());
        let f = FaultingStore::new(Arc::clone(&s), plan);
        let keys: Vec<VertexId> = (0..8).collect();
        // Deterministic: either the whole batch fails (store untouched)
        // or it succeeds wholesale.
        match f.get_many(&keys, 0) {
            Ok(batch) => assert_eq!(batch.values.iter().filter(|v| v.is_some()).count(), 8),
            Err(_) => assert_eq!(s.stats().requests, 0),
        }
        // Same decision on a replay.
        let replay = FaultingStore::new(Arc::clone(&s), Arc::clone(f.plan()));
        assert_eq!(
            f.get_many(&keys, 1).is_err(),
            replay.get_many(&keys, 1).is_err()
        );
    }

    fn replicated_store(shards: usize, replication: usize) -> Arc<KvStore> {
        Arc::new(KvStore::from_graph_replicated(
            &gen::complete(8),
            shards,
            replication,
        ))
    }

    #[test]
    fn primary_outage_fails_over_to_the_mirror() {
        let s = replicated_store(4, 2);
        let plan = Arc::new(FaultPlan::builder(0).shard_outage(0, 1).build());
        let f = FaultingStore::new(Arc::clone(&s), plan);
        // Vertex 0's primary (shard 0) is dark; its mirror on shard 1
        // serves without surfacing an error.
        let (adj, _) = f.get(0, 0).unwrap().unwrap();
        assert_eq!(adj.len(), 7);
        assert_eq!(f.injected(), 0, "masked faults never surface");
        assert_eq!(f.failover_attempts(), 1);
        assert_eq!(f.failover_reads(), 1);
        assert_eq!(s.shard_stats(0).requests, 0, "dark shard untouched");
        assert_eq!(s.shard_stats(1).requests, 1);
        // A vertex primarily off the dark shard reads straight through.
        f.get(1, 0).unwrap().unwrap();
        assert_eq!(f.failover_reads(), 1);
    }

    #[test]
    fn all_replicas_dark_surfaces_an_outage() {
        let s = replicated_store(4, 2);
        // Vertex 0's whole placement group {0, 1} is dark.
        let plan = Arc::new(
            FaultPlan::builder(0)
                .shard_outage(0, 1)
                .shard_outage(1, 1)
                .build(),
        );
        let f = FaultingStore::new(Arc::clone(&s), plan);
        let err = f.get(0, 0).unwrap_err();
        assert_eq!(err.as_fault().unwrap().kind, FaultKind::Outage);
        assert_eq!(f.injected(), 1);
        assert_eq!(f.failover_reads(), 0, "nothing was served");
        // Vertex 2's placement {2, 3} survives untouched.
        assert!(f.get(2, 0).is_ok());
    }

    #[test]
    fn outage_onset_respects_the_pass() {
        let s = replicated_store(2, 1);
        let plan = Arc::new(FaultPlan::builder(0).shard_outage(0, 2).build());
        let f = FaultingStore::new(Arc::clone(&s), plan);
        assert!(f.get(0, 0).is_ok(), "pass 1 predates the outage");
        f.set_pass(2);
        assert_eq!(
            f.get(0, 5).unwrap_err().as_fault().unwrap().kind,
            FaultKind::Outage
        );
        assert_eq!(
            f.failover_attempts(),
            0,
            "unreplicated stores have nowhere to fail over to"
        );
    }

    #[test]
    fn mixed_outage_and_transient_errors_stay_retryable() {
        let s = replicated_store(4, 2);
        // Primary dark; mirror healthy but heavily fault-injected. The
        // surfaced error must be retryable (the mirror can recover), and
        // some attempt must eventually be served by it.
        let plan = Arc::new(
            FaultPlan::builder(3)
                .shard_outage(0, 1)
                .transient_rate(0.5)
                .build(),
        );
        let f = FaultingStore::new(Arc::clone(&s), plan);
        let mut served = false;
        for attempt in 0..64 {
            match f.get(0, attempt) {
                Ok(_) => {
                    served = true;
                    break;
                }
                Err(err) => assert_ne!(
                    err.as_fault().unwrap().kind,
                    FaultKind::Outage,
                    "a live mirror keeps the error retryable"
                ),
            }
        }
        assert!(served, "independent attempts must reach the mirror");
        assert!(f.failover_reads() >= 1);
    }

    #[test]
    fn batches_fail_over_per_primary_group() {
        let s = replicated_store(4, 2);
        let plan = Arc::new(FaultPlan::builder(0).shard_outage(0, 1).build());
        let f = FaultingStore::new(Arc::clone(&s), plan);
        // Primaries: 0, 4 on shard 0 (dark, fails over to 1); 1, 5 on
        // shard 1; 2 on shard 2. Serving shards: {1, 2} = 2 round trips.
        let batch = f.get_many(&[0, 4, 1, 5, 2], 0).unwrap();
        assert_eq!(batch.round_trips, 2);
        assert_eq!(batch.values.iter().filter(|v| v.is_some()).count(), 5);
        assert_eq!(f.failover_reads(), 1, "one group failed over");
        assert_eq!(s.shard_stats(0).requests, 0);
    }

    #[test]
    fn batch_with_a_hopeless_group_fails_fast_as_outage() {
        let s = replicated_store(4, 2);
        let plan = Arc::new(
            FaultPlan::builder(0)
                .shard_outage(0, 1)
                .shard_outage(1, 1)
                .build(),
        );
        let f = FaultingStore::new(Arc::clone(&s), plan);
        // Vertex 0's group {0, 1} is all dark; vertex 2's group is fine.
        let err = f.get_many(&[0, 2], 0).unwrap_err();
        assert_eq!(err.as_fault().unwrap().kind, FaultKind::Outage);
        assert_eq!(s.stats().requests, 0, "the batch fails as a unit");
    }

    #[test]
    fn routed_latency_penalty_prices_the_serving_replica() {
        let s = replicated_store(4, 2);
        // Shard 0 is dark *and* slow; its mirror (shard 1) is healthy.
        let plan = Arc::new(
            FaultPlan::builder(0)
                .base_latency(Duration::from_micros(100))
                .shard_outage(0, 1)
                .slow_shard(0, 5.0)
                .slow_shard(1, 2.0)
                .build(),
        );
        let f = FaultingStore::new(s, plan);
        // Vertex 0 is served by shard 1: it pays shard 1's penalty, not
        // the dark primary's.
        assert_eq!(
            f.latency_penalty_routed(0, 0),
            Duration::from_micros(100),
            "the failover read pays the mirror's penalty"
        );
        // Batch over vertices 0 (served by 1) and 2 (healthy shard 2).
        assert_eq!(
            f.batch_latency_penalty_routed(&[0, 2], 0),
            Duration::from_micros(100)
        );
    }

    #[test]
    fn slow_shard_penalties_accumulate_per_touched_shard() {
        let s = store(4);
        let plan = Arc::new(
            FaultPlan::builder(0)
                .base_latency(Duration::from_micros(100))
                .slow_shard(0, 3.0)
                .slow_shard(1, 2.0)
                .build(),
        );
        let f = FaultingStore::new(s, plan);
        assert_eq!(f.latency_penalty(0), Duration::from_micros(200));
        // Batch touching shards 0, 1 and 2: 200µs + 100µs + 0.
        assert_eq!(
            f.batch_latency_penalty(&[0, 4, 1, 2]),
            Duration::from_micros(300)
        );
    }
}
