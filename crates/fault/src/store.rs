//! The fault-injecting store decorator.
//!
//! [`FaultingStore`] wraps a [`KvStore`] and consults the [`FaultPlan`]
//! *before* touching it: a faulted round trip fails without reaching the
//! store, so the store's request/byte accounting keeps reconciling with
//! the transport's (failed attempts transfer nothing). The wrapped API is
//! attempt-aware — callers pass the attempt number so the plan can make
//! independent decisions per retry.

use crate::plan::{FaultError, FaultPlan};
use benu_graph::{AdjSet, VertexId};
use benu_kvstore::{BatchOutcome, KvStore};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A [`KvStore`] with a [`FaultPlan`] in front of it.
pub struct FaultingStore {
    store: Arc<KvStore>,
    plan: Arc<FaultPlan>,
    injected: AtomicU64,
}

impl FaultingStore {
    /// Puts `plan` in front of `store`.
    pub fn new(store: Arc<KvStore>, plan: Arc<FaultPlan>) -> Self {
        FaultingStore {
            store,
            plan,
            injected: AtomicU64::new(0),
        }
    }

    /// The wrapped store.
    pub fn store(&self) -> &Arc<KvStore> {
        &self.store
    }

    /// The plan driving the injection.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }

    /// Faults injected through this decorator so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The `attempt`-th try at fetching `v`. `Ok(None)` means the vertex
    /// genuinely does not exist (a permanent condition — retrying cannot
    /// help); `Err` is an injected, retryable fault.
    pub fn get(&self, v: VertexId, attempt: u32) -> Result<Option<Arc<AdjSet>>, FaultError> {
        let shard = self.store.shard_of(v);
        if let Some(kind) = self.plan.fault_for(shard, v as u64, attempt) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(FaultError { kind, shard });
        }
        Ok(self.store.get(v))
    }

    /// The `attempt`-th try at a batched multi-get. The fault decision is
    /// per touched shard (keyed by the smallest vertex routed to it); if
    /// any touched shard faults, the whole batch fails and the caller
    /// retries it — matching a multi-get RPC that fails as a unit.
    pub fn get_many(&self, keys: &[VertexId], attempt: u32) -> Result<BatchOutcome, FaultError> {
        for (shard, key) in touched_shards(&self.store, keys) {
            if let Some(kind) = self.plan.fault_for(shard, key, attempt) {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Err(FaultError { kind, shard });
            }
        }
        Ok(self.store.get_many(keys))
    }

    /// The extra virtual latency a successful round trip to `shard` pays
    /// (zero for healthy shards).
    pub fn latency_penalty(&self, shard: usize) -> Duration {
        self.plan.latency_penalty(shard)
    }

    /// The total slow-shard penalty of a successful batch over `keys`
    /// (one round trip per touched shard).
    pub fn batch_latency_penalty(&self, keys: &[VertexId]) -> Duration {
        touched_shards(&self.store, keys)
            .into_iter()
            .map(|(shard, _)| self.plan.latency_penalty(shard))
            .sum()
    }
}

/// The distinct shards a batch touches, each paired with the smallest
/// vertex routed to it (the batch's deterministic per-shard decision key).
fn touched_shards(store: &KvStore, keys: &[VertexId]) -> Vec<(usize, u64)> {
    let mut min_key: Vec<Option<u64>> = vec![None; store.num_shards()];
    for &v in keys {
        let s = store.shard_of(v);
        let k = v as u64;
        min_key[s] = Some(min_key[s].map_or(k, |m: u64| m.min(k)));
    }
    min_key
        .into_iter()
        .enumerate()
        .filter_map(|(s, k)| k.map(|k| (s, k)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_graph::gen;

    fn store(shards: usize) -> Arc<KvStore> {
        Arc::new(KvStore::from_graph(&gen::complete(8), shards))
    }

    #[test]
    fn benign_plan_is_a_passthrough() {
        let s = store(2);
        let f = FaultingStore::new(Arc::clone(&s), Arc::new(FaultPlan::benign(0)));
        assert_eq!(f.get(0, 0).unwrap().unwrap().len(), 7);
        assert!(f.get(99, 0).unwrap().is_none(), "missing stays missing");
        let batch = f.get_many(&[0, 1, 2], 0).unwrap();
        assert_eq!(batch.values.len(), 3);
        assert_eq!(f.injected(), 0);
    }

    #[test]
    fn injected_faults_never_touch_the_store() {
        let s = store(1);
        let plan = Arc::new(FaultPlan::builder(11).transient_rate(0.9).build());
        let f = FaultingStore::new(Arc::clone(&s), plan);
        let mut faults = 0;
        for v in 0..8u32 {
            if f.get(v, 0).is_err() {
                faults += 1;
            }
        }
        assert!(faults > 0, "rate 0.9 must fault something");
        assert_eq!(f.injected(), faults);
        // The store only accounted the successful fetches.
        assert_eq!(s.stats().requests, 8 - faults);
    }

    #[test]
    fn batch_faults_fail_as_a_unit() {
        let s = store(4);
        let plan = Arc::new(FaultPlan::builder(2).transient_rate(0.5).build());
        let f = FaultingStore::new(Arc::clone(&s), plan);
        let keys: Vec<VertexId> = (0..8).collect();
        // Deterministic: either the whole batch fails (store untouched)
        // or it succeeds wholesale.
        match f.get_many(&keys, 0) {
            Ok(batch) => assert_eq!(batch.values.iter().filter(|v| v.is_some()).count(), 8),
            Err(_) => assert_eq!(s.stats().requests, 0),
        }
        // Same decision on a replay.
        let replay = FaultingStore::new(Arc::clone(&s), Arc::clone(f.plan()));
        assert_eq!(
            f.get_many(&keys, 1).is_err(),
            replay.get_many(&keys, 1).is_err()
        );
    }

    #[test]
    fn slow_shard_penalties_accumulate_per_touched_shard() {
        let s = store(4);
        let plan = Arc::new(
            FaultPlan::builder(0)
                .base_latency(Duration::from_micros(100))
                .slow_shard(0, 3.0)
                .slow_shard(1, 2.0)
                .build(),
        );
        let f = FaultingStore::new(s, plan);
        assert_eq!(f.latency_penalty(0), Duration::from_micros(200));
        // Batch touching shards 0, 1 and 2: 200µs + 100µs + 0.
        assert_eq!(
            f.batch_latency_penalty(&[0, 4, 1, 2]),
            Duration::from_micros(300)
        );
    }
}
