//! Retry policy: capped exponential backoff with deterministic jitter.
//!
//! The backoff wait is *virtual time* — the runtime charges it into
//! busy-time accounting instead of sleeping — and the jitter is a pure
//! function of (seed, request, attempt), so a seeded run reproduces its
//! exact retry schedule.

use crate::plan::draw;
use std::time::Duration;

/// Salt separating jitter draws from fault decisions.
const SALT_JITTER: u64 = 0x1E;

/// How a transport retries transient store faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request (first try + retries). A request still
    /// failing on its last attempt is unrecoverable.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Ceiling on a single backoff wait (before jitter).
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(5),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (the pre-recovery fail-fast runtime).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// The virtual wait before retry number `attempt` (1-based) of the
    /// request identified by `key`: `base × 2^(attempt−1)` capped at
    /// `max_backoff`, then equal-jittered into `[½, 1]×` of that value
    /// with a deterministic draw from `seed`.
    pub fn backoff(&self, seed: u64, key: u64, attempt: u32) -> Duration {
        debug_assert!(attempt >= 1, "backoff precedes a retry, not the first try");
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << (attempt - 1).min(20))
            .min(self.max_backoff);
        let jitter = draw(seed, SALT_JITTER, key, attempt as u64);
        exp.mul_f64(0.5 + 0.5 * jitter)
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn validate(&self) {
        assert!(self.max_attempts >= 1, "need at least one attempt");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_micros(800),
        };
        let b1 = p.backoff(1, 7, 1);
        let b2 = p.backoff(1, 7, 2);
        let b9 = p.backoff(1, 7, 9);
        // Jitter keeps each wait within [½, 1]× of the deterministic value.
        assert!(b1 >= Duration::from_micros(50) && b1 <= Duration::from_micros(100));
        assert!(b2 >= Duration::from_micros(100) && b2 <= Duration::from_micros(200));
        assert!(b9 <= Duration::from_micros(800), "cap must hold: {b9:?}");
        assert!(b9 >= Duration::from_micros(400));
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_key() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(3, 10, 2), p.backoff(3, 10, 2));
        assert_ne!(
            p.backoff(3, 10, 2),
            p.backoff(4, 10, 2),
            "different seeds should (overwhelmingly) jitter differently"
        );
    }

    #[test]
    fn huge_attempt_numbers_do_not_overflow() {
        let p = RetryPolicy::default();
        let b = p.backoff(0, 0, 64);
        assert!(b <= p.max_backoff);
    }

    #[test]
    fn none_policy_fails_fast() {
        let p = RetryPolicy::none();
        p.validate();
        assert_eq!(p.max_attempts, 1);
    }
}
