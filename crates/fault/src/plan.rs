//! The deterministic fault plan.
//!
//! A [`FaultPlan`] is a *pure function* from request identity to fault
//! decision. Nothing in it consults a clock, a global counter, or any
//! other run-time state: whether the `attempt`-th fetch of vertex `v`
//! from shard `s` fails is fully determined by the plan's seed. Two runs
//! over the same plan therefore inject exactly the same faults at exactly
//! the same requests, no matter how threads interleave — every failure
//! scenario is a reproducible unit test.
//!
//! The taxonomy (see DESIGN.md "Fault model & recovery"):
//!
//! * **transient errors** — a store round trip fails and may be retried;
//! * **timeouts** — a round trip is lost after the plan's full (virtual)
//!   timeout wait, which is charged into busy-time accounting; retried
//!   like a transient error but counted separately;
//! * **slow shards** — a shard answers, but `multiplier×` slower; the
//!   extra latency is virtual time charged into busy-time accounting;
//! * **worker crashes** — a worker machine dies at a task boundary after
//!   completing a fixed number of tasks; its in-flight work is discarded
//!   and re-executed elsewhere (BENU's idempotent-task recovery);
//! * **shard outages** — a shard goes *persistently* dark from a given
//!   pass onwards (optionally coming back at a later pass): unlike a
//!   transient error, every request to it fails for as long as the
//!   outage holds, so only replica failover — never a retry — can serve
//!   the data.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::time::Duration;

/// Salt separating store-fault decisions from other decision streams.
const SALT_STORE: u64 = 0x51;
/// Salt for the slow-shard sampler in [`FaultPlanBuilder::random_slow_shards`].
const SALT_SLOW: u64 = 0x5C;
/// Salt for the outage sampler in [`FaultPlanBuilder::random_shard_outages`].
const SALT_OUTAGE: u64 = 0x07;
/// Salt for [`FaultPlan::scoped`] seed derivation.
const SALT_SCOPE: u64 = 0x5E;

/// SplitMix64-style combination of the seed with a decision key, giving
/// an independent, well-mixed stream per (salt, a, b) triple.
pub(crate) fn mix(seed: u64, salt: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(salt)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(a)
        .wrapping_mul(0x94D0_49BB_1331_11EB)
        .wrapping_add(b);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` for the decision keyed by `(salt, a, b)`.
pub(crate) fn draw(seed: u64, salt: u64, a: u64, b: u64) -> f64 {
    ChaCha8Rng::seed_from_u64(mix(seed, salt, a, b)).gen::<f64>()
}

/// The kind of injected store fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The round trip failed immediately (connection reset, shard
    /// restart). Retryable.
    Transient,
    /// The round trip was lost after a full (virtual) timeout wait.
    /// Retryable, but every attempt costs the plan's
    /// [`FaultPlan::timeout_wait`] in virtual time before the loss is
    /// detected.
    Timeout,
    /// The shard is in a persistent outage: every request to it fails
    /// until the outage (optionally) lifts at a later pass. *Not*
    /// retryable — retrying cannot help while the outage holds, so this
    /// kind only surfaces once replica failover is exhausted too, and
    /// the transport fails fast on it.
    Outage,
}

/// An injected store fault, surfaced to the retry layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultError {
    /// What failed.
    pub kind: FaultKind,
    /// The shard whose round trip failed.
    pub shard: usize,
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            FaultKind::Transient => write!(f, "transient fault on shard {}", self.shard),
            FaultKind::Timeout => write!(f, "timeout on shard {}", self.shard),
            FaultKind::Outage => write!(f, "shard {} is down (persistent outage)", self.shard),
        }
    }
}

impl std::error::Error for FaultError {}

/// A deterministic, seeded description of every fault a run will see.
///
/// Build one with [`FaultPlan::builder`]. All rates are per store round
/// trip; crashes are per worker, at a task boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    transient_rate: f64,
    timeout_rate: f64,
    slow: HashMap<usize, f64>,
    base_latency: Duration,
    timeout_wait: Duration,
    crashes: HashMap<usize, u64>,
    outages: HashMap<usize, Outage>,
}

/// The pass window during which a shard is dark. Passes are 1-based (the
/// first execution pass is pass 1); `until_pass` is exclusive and `None`
/// means the shard never comes back within the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Outage {
    from_pass: u32,
    until_pass: Option<u32>,
}

impl FaultPlan {
    /// Starts a builder with all fault rates at zero.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder(FaultPlan {
            seed,
            transient_rate: 0.0,
            timeout_rate: 0.0,
            slow: HashMap::new(),
            base_latency: Duration::from_micros(200),
            timeout_wait: Duration::from_millis(10),
            crashes: HashMap::new(),
            outages: HashMap::new(),
        })
    }

    /// A plan that injects nothing (useful as a control arm).
    pub fn benign(seed: u64) -> Self {
        FaultPlan::builder(seed).build()
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Combined per-round-trip fault probability.
    pub fn fault_rate(&self) -> f64 {
        self.transient_rate + self.timeout_rate
    }

    /// True if the plan can inject anything at all.
    pub fn has_faults(&self) -> bool {
        self.fault_rate() > 0.0
            || !self.slow.is_empty()
            || !self.crashes.is_empty()
            || !self.outages.is_empty()
    }

    /// The fault (if any) injected into the `attempt`-th round trip for
    /// `key` on `shard`. `key` identifies the request (the vertex for
    /// single gets, the smallest vertex routed to the shard for batched
    /// gets); decisions are independent across attempts, so retries
    /// eventually succeed with probability 1 for any rate < 1.
    pub fn fault_for(&self, shard: usize, key: u64, attempt: u32) -> Option<FaultKind> {
        if self.transient_rate <= 0.0 && self.timeout_rate <= 0.0 {
            return None;
        }
        let a = ((shard as u64) << 48) ^ key;
        let x = draw(self.seed, SALT_STORE, a, attempt as u64);
        if x < self.transient_rate {
            Some(FaultKind::Transient)
        } else if x < self.transient_rate + self.timeout_rate {
            Some(FaultKind::Timeout)
        } else {
            None
        }
    }

    /// The *extra* virtual latency a round trip to `shard` pays on top of
    /// the baseline: `base_latency × (multiplier − 1)`, zero for healthy
    /// shards. Charged into busy-time accounting by the transport.
    pub fn latency_penalty(&self, shard: usize) -> Duration {
        match self.slow.get(&shard) {
            Some(&m) if m > 1.0 => self.base_latency.mul_f64(m - 1.0),
            _ => Duration::ZERO,
        }
    }

    /// The latency multiplier of `shard` (1.0 for healthy shards).
    pub fn latency_multiplier(&self, shard: usize) -> f64 {
        self.slow.get(&shard).copied().unwrap_or(1.0)
    }

    /// The full (virtual) wait a timed-out round trip blocks for before
    /// the loss is detected — the deadline a real RPC client would spend.
    /// The transport charges it into busy-time accounting on every
    /// injected [`FaultKind::Timeout`], retried or not.
    pub fn timeout_wait(&self) -> Duration {
        self.timeout_wait
    }

    /// The number of tasks after which `worker` crashes, if the plan
    /// crashes it at all. A worker crashes at most once per run.
    pub fn crash_after(&self, worker: usize) -> Option<u64> {
        self.crashes.get(&worker).copied()
    }

    /// Number of worker crashes the plan describes.
    pub fn planned_crashes(&self) -> usize {
        self.crashes.len()
    }

    /// True if `shard` is dark during `pass` (1-based). Pure plan state —
    /// no clock, no counters — so every thread agrees on a shard's
    /// status for the whole pass.
    pub fn outage_at(&self, shard: usize, pass: u32) -> bool {
        match self.outages.get(&shard) {
            Some(o) => pass >= o.from_pass && o.until_pass.is_none_or(|until| pass < until),
            None => false,
        }
    }

    /// Number of shard outages the plan describes.
    pub fn planned_outages(&self) -> usize {
        self.outages.len()
    }

    /// Derives a plan whose *per-request* decision stream (transient
    /// errors, timeouts, retry jitter) is independent of this plan's and
    /// of any other scope's, while the *structural* state — slow shards,
    /// worker crashes, shard outages, latencies, rates — is shared
    /// verbatim. This is how concurrent queries draw independent
    /// deterministic fault streams against the same injected
    /// infrastructure failures: scope by query id and every scope sees
    /// the same dark shards, but faults different round trips.
    pub fn scoped(&self, scope: u64) -> FaultPlan {
        FaultPlan {
            seed: mix(self.seed, SALT_SCOPE, scope, 0),
            ..self.clone()
        }
    }

    /// The shards the plan darkens at some point, in ascending order.
    pub fn outage_shards(&self) -> Vec<usize> {
        let mut shards: Vec<usize> = self.outages.keys().copied().collect();
        shards.sort_unstable();
        shards
    }
}

/// Fluent builder for [`FaultPlan`].
#[derive(Clone, Debug)]
pub struct FaultPlanBuilder(FaultPlan);

impl FaultPlanBuilder {
    /// Per-round-trip probability of an immediate transient error.
    ///
    /// # Panics
    ///
    /// Panics if the combined fault rate leaves `[0, 1)`.
    pub fn transient_rate(mut self, rate: f64) -> Self {
        self.0.transient_rate = rate;
        self.check_rates();
        self
    }

    /// Per-round-trip probability of a simulated timeout.
    ///
    /// # Panics
    ///
    /// Panics if the combined fault rate leaves `[0, 1)`.
    pub fn timeout_rate(mut self, rate: f64) -> Self {
        self.0.timeout_rate = rate;
        self.check_rates();
        self
    }

    fn check_rates(&self) {
        let total = self.0.transient_rate + self.0.timeout_rate;
        assert!(
            self.0.transient_rate >= 0.0 && self.0.timeout_rate >= 0.0 && total < 1.0,
            "fault rates must be non-negative and sum below 1 (got {total})"
        );
    }

    /// Marks `shard` as slow: every round trip to it pays
    /// `base_latency × (multiplier − 1)` extra virtual latency.
    ///
    /// # Panics
    ///
    /// Panics if `multiplier < 1`.
    pub fn slow_shard(mut self, shard: usize, multiplier: f64) -> Self {
        assert!(multiplier >= 1.0, "latency multiplier must be ≥ 1");
        self.0.slow.insert(shard, multiplier);
        self
    }

    /// Samples `count` distinct slow shards out of `num_shards` with the
    /// plan's seeded RNG (deterministic per seed), all at `multiplier`.
    ///
    /// # Panics
    ///
    /// Panics if `count > num_shards` or `multiplier < 1`.
    pub fn random_slow_shards(mut self, count: usize, num_shards: usize, multiplier: f64) -> Self {
        assert!(count <= num_shards, "cannot slow more shards than exist");
        assert!(multiplier >= 1.0, "latency multiplier must be ≥ 1");
        let mut rng = ChaCha8Rng::seed_from_u64(mix(self.0.seed, SALT_SLOW, 0, 0));
        let mut remaining: Vec<usize> = (0..num_shards).collect();
        for _ in 0..count {
            let i = rng.gen_range(0..remaining.len());
            self.0.slow.insert(remaining.swap_remove(i), multiplier);
        }
        self
    }

    /// The baseline round-trip latency the slow-shard multipliers scale
    /// (virtual time; never slept).
    pub fn base_latency(mut self, latency: Duration) -> Self {
        self.0.base_latency = latency;
        self
    }

    /// The (virtual) wait every injected timeout costs before its loss
    /// is detected (never slept; charged into busy-time accounting).
    /// Defaults to 10 ms.
    pub fn timeout_wait(mut self, wait: Duration) -> Self {
        self.0.timeout_wait = wait;
        self
    }

    /// Crashes `worker` at the task boundary after it has completed
    /// `after_tasks` tasks (its `after_tasks`-th completion kills it).
    ///
    /// # Panics
    ///
    /// Panics if `after_tasks` is zero (a worker that never ran anything
    /// has no boundary to crash at).
    pub fn crash(mut self, worker: usize, after_tasks: u64) -> Self {
        assert!(after_tasks >= 1, "crash boundary must be ≥ 1 task");
        self.0.crashes.insert(worker, after_tasks);
        self
    }

    /// Takes `shard` down persistently from pass `from_pass` (1-based)
    /// onwards — every request to it fails until the end of the run.
    ///
    /// # Panics
    ///
    /// Panics if `from_pass` is zero (passes are 1-based; there is no
    /// pass 0 to darken).
    pub fn shard_outage(mut self, shard: usize, from_pass: u32) -> Self {
        assert!(
            from_pass >= 1,
            "outage passes are 1-based (pass 0 does not exist)"
        );
        self.0.outages.insert(
            shard,
            Outage {
                from_pass,
                until_pass: None,
            },
        );
        self
    }

    /// Takes `shard` down for the half-open pass window
    /// `[from_pass, until_pass)`: dark from `from_pass`, healthy again
    /// once `until_pass` starts — the deterministic "recovery pass".
    ///
    /// # Panics
    ///
    /// Panics if `from_pass` is zero or the window is empty
    /// (`until_pass <= from_pass`).
    pub fn shard_outage_window(mut self, shard: usize, from_pass: u32, until_pass: u32) -> Self {
        assert!(
            from_pass >= 1,
            "outage passes are 1-based (pass 0 does not exist)"
        );
        assert!(
            until_pass > from_pass,
            "outage window [{from_pass}, {until_pass}) is empty"
        );
        self.0.outages.insert(
            shard,
            Outage {
                from_pass,
                until_pass: Some(until_pass),
            },
        );
        self
    }

    /// Samples `count` distinct shards out of `num_shards` with the
    /// plan's seeded RNG (deterministic per seed) and takes each down
    /// persistently from pass `from_pass`.
    ///
    /// # Panics
    ///
    /// Panics if `count > num_shards` or `from_pass` is zero.
    pub fn random_shard_outages(mut self, count: usize, num_shards: usize, from_pass: u32) -> Self {
        assert!(count <= num_shards, "cannot darken more shards than exist");
        assert!(
            from_pass >= 1,
            "outage passes are 1-based (pass 0 does not exist)"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(mix(self.0.seed, SALT_OUTAGE, 0, 0));
        let mut remaining: Vec<usize> = (0..num_shards).collect();
        for _ in 0..count {
            let i = rng.gen_range(0..remaining.len());
            self.0.outages.insert(
                remaining.swap_remove(i),
                Outage {
                    from_pass,
                    until_pass: None,
                },
            );
        }
        self
    }

    /// Finalises the plan.
    ///
    /// # Panics
    ///
    /// Panics if timeouts are enabled with a zero `timeout_wait`: a
    /// timeout that waits for nothing is indistinguishable from a
    /// transient error and would silently corrupt the virtual-time
    /// accounting. Checked here rather than in the setters because the
    /// two can be configured in either order.
    pub fn build(self) -> FaultPlan {
        assert!(
            self.0.timeout_rate <= 0.0 || !self.0.timeout_wait.is_zero(),
            "timeout_wait must be positive when timeouts are enabled \
             (a timeout that waits for nothing is just a transient error)"
        );
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_order_independent() {
        let plan = FaultPlan::builder(42).transient_rate(0.3).build();
        let a: Vec<_> = (0..200).map(|v| plan.fault_for(1, v, 0)).collect();
        let b: Vec<_> = (0..200).rev().map(|v| plan.fault_for(1, v, 0)).collect();
        let b_fwd: Vec<_> = b.into_iter().rev().collect();
        assert_eq!(a, b_fwd, "decision must not depend on evaluation order");
        assert!(a.iter().any(Option::is_some));
        assert!(a.iter().any(Option::is_none));
    }

    #[test]
    fn rates_control_fault_frequency() {
        let plan = FaultPlan::builder(7)
            .transient_rate(0.2)
            .timeout_rate(0.1)
            .build();
        let n = 20_000u64;
        let mut transients = 0u64;
        let mut timeouts = 0u64;
        for v in 0..n {
            match plan.fault_for(0, v, 0) {
                Some(FaultKind::Transient) => transients += 1,
                Some(FaultKind::Timeout) => timeouts += 1,
                // `fault_for` draws only transients and timeouts;
                // outages are pass-scoped, not sampled.
                Some(FaultKind::Outage) => unreachable!(),
                None => {}
            }
        }
        let t = transients as f64 / n as f64;
        let o = timeouts as f64 / n as f64;
        assert!((t - 0.2).abs() < 0.02, "transient rate off: {t}");
        assert!((o - 0.1).abs() < 0.02, "timeout rate off: {o}");
    }

    #[test]
    fn attempts_draw_independent_decisions() {
        let plan = FaultPlan::builder(3).transient_rate(0.5).build();
        // Some vertex that faults on attempt 0 must succeed on a later
        // attempt (retries converge).
        let v = (0..1000)
            .find(|&v| plan.fault_for(0, v, 0).is_some())
            .expect("some fault at rate 0.5");
        let recovered = (1..64).any(|a| plan.fault_for(0, v, a).is_none());
        assert!(recovered, "independent attempts must eventually succeed");
    }

    #[test]
    fn benign_plan_injects_nothing() {
        let plan = FaultPlan::benign(99);
        assert!(!plan.has_faults());
        for v in 0..100 {
            assert_eq!(plan.fault_for(0, v, 0), None);
        }
        assert_eq!(plan.latency_penalty(0), Duration::ZERO);
        assert_eq!(plan.crash_after(0), None);
    }

    #[test]
    fn slow_shards_charge_scaled_penalty() {
        let plan = FaultPlan::builder(1)
            .base_latency(Duration::from_micros(100))
            .slow_shard(2, 5.0)
            .build();
        assert_eq!(plan.latency_penalty(2), Duration::from_micros(400));
        assert_eq!(plan.latency_penalty(0), Duration::ZERO);
        assert_eq!(plan.latency_multiplier(2), 5.0);
        assert_eq!(plan.latency_multiplier(1), 1.0);
    }

    #[test]
    fn random_slow_shards_are_seed_deterministic() {
        let pick = |seed| {
            let plan = FaultPlan::builder(seed)
                .random_slow_shards(3, 16, 8.0)
                .build();
            let mut slow: Vec<usize> = (0..16)
                .filter(|&s| plan.latency_multiplier(s) > 1.0)
                .collect();
            slow.sort_unstable();
            slow
        };
        assert_eq!(pick(5), pick(5));
        assert_eq!(pick(5).len(), 3);
    }

    #[test]
    fn timeout_wait_defaults_and_round_trips() {
        let plan = FaultPlan::benign(0);
        assert!(
            plan.timeout_wait() > Duration::ZERO,
            "a timeout that waits for nothing is just a transient"
        );
        let plan = FaultPlan::builder(0)
            .timeout_wait(Duration::from_millis(250))
            .build();
        assert_eq!(plan.timeout_wait(), Duration::from_millis(250));
    }

    #[test]
    fn crash_plan_round_trips() {
        let plan = FaultPlan::builder(0).crash(2, 10).build();
        assert_eq!(plan.crash_after(2), Some(10));
        assert_eq!(plan.crash_after(0), None);
        assert_eq!(plan.planned_crashes(), 1);
        assert!(plan.has_faults());
    }

    #[test]
    fn outages_cover_their_pass_window() {
        let plan = FaultPlan::builder(0)
            .shard_outage(2, 2)
            .shard_outage_window(0, 1, 3)
            .build();
        // Persistent outage: dark from pass 2 to the end of time.
        assert!(!plan.outage_at(2, 1));
        assert!(plan.outage_at(2, 2));
        assert!(plan.outage_at(2, 100));
        // Windowed outage: dark in passes 1 and 2, back for pass 3.
        assert!(plan.outage_at(0, 1));
        assert!(plan.outage_at(0, 2));
        assert!(!plan.outage_at(0, 3));
        // Untouched shards are always healthy.
        assert!(!plan.outage_at(1, 1));
        assert_eq!(plan.planned_outages(), 2);
        assert_eq!(plan.outage_shards(), vec![0, 2]);
        assert!(plan.has_faults());
    }

    #[test]
    fn random_outages_are_seed_deterministic() {
        let pick = |seed| {
            let plan = FaultPlan::builder(seed)
                .random_shard_outages(2, 8, 1)
                .build();
            plan.outage_shards()
        };
        assert_eq!(pick(9), pick(9));
        assert_eq!(pick(9).len(), 2);
        // A different seed eventually picks a different set.
        assert!((0..32).any(|s| pick(s) != pick(9)));
    }

    #[test]
    fn scoped_plans_share_structure_but_not_decision_streams() {
        let plan = FaultPlan::builder(21)
            .transient_rate(0.3)
            .shard_outage(1, 1)
            .slow_shard(2, 4.0)
            .crash(0, 5)
            .build();
        let a = plan.scoped(0);
        let b = plan.scoped(1);
        // Structural faults are shared across scopes.
        for p in [&a, &b] {
            assert!(p.outage_at(1, 1));
            assert_eq!(p.latency_multiplier(2), 4.0);
            assert_eq!(p.crash_after(0), Some(5));
            assert_eq!(p.fault_rate(), plan.fault_rate());
        }
        // Per-request decisions are independent per scope, and each
        // scope replays its own stream exactly.
        let stream = |p: &FaultPlan| -> Vec<Option<FaultKind>> {
            (0..200).map(|v| p.fault_for(0, v, 0)).collect()
        };
        assert_eq!(stream(&a), stream(&plan.scoped(0)), "scopes replay");
        assert_ne!(stream(&a), stream(&b), "scopes draw independently");
        assert_ne!(stream(&a), stream(&plan), "scope 0 is not the parent");
    }

    #[test]
    #[should_panic(expected = "sum below 1")]
    fn rates_above_one_are_rejected() {
        FaultPlan::builder(0).transient_rate(0.7).timeout_rate(0.4);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rates_are_rejected() {
        FaultPlan::builder(0).transient_rate(-0.1);
    }

    #[test]
    #[should_panic(expected = "sum below 1")]
    fn single_rate_above_one_is_rejected() {
        FaultPlan::builder(0).timeout_rate(1.2);
    }

    #[test]
    #[should_panic(expected = "timeout_wait must be positive")]
    fn zero_timeout_wait_with_timeouts_is_rejected() {
        FaultPlan::builder(0)
            .timeout_wait(Duration::ZERO)
            .timeout_rate(0.1)
            .build();
    }

    #[test]
    fn zero_timeout_wait_without_timeouts_is_fine() {
        // Only the combination is contradictory; a plan that never times
        // out may zero the wait freely.
        let plan = FaultPlan::builder(0).timeout_wait(Duration::ZERO).build();
        assert_eq!(plan.timeout_wait(), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "boundary must be ≥ 1")]
    fn zero_task_crash_is_rejected() {
        FaultPlan::builder(0).crash(0, 0);
    }

    #[test]
    #[should_panic(expected = "passes are 1-based")]
    fn outage_at_pass_zero_is_rejected() {
        FaultPlan::builder(0).shard_outage(0, 0);
    }

    #[test]
    #[should_panic(expected = "is empty")]
    fn empty_outage_window_is_rejected() {
        FaultPlan::builder(0).shard_outage_window(0, 2, 2);
    }
}
