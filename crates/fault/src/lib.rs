//! Deterministic fault injection for the BENU cluster runtime.
//!
//! BENU's fault-tolerance argument (paper §III-C, extended in
//! arXiv:2006.12819) is that local search tasks are *independent* and
//! *idempotent*: a failed task can simply be regenerated and re-executed
//! on any surviving worker, with no partial state to reconcile. This
//! crate supplies the machinery that lets the runtime prove that claim
//! under test:
//!
//! * [`FaultPlan`] — a seeded, deterministic description of every fault a
//!   run will see: transient store errors, simulated timeouts, slow-shard
//!   latency multipliers (virtual time), worker crashes at task
//!   boundaries, and persistent whole-shard outages scoped to execution
//!   passes. Decisions are pure functions of request identity, so any
//!   failure scenario replays exactly from its seed — no wall clock, no
//!   global ordering dependence.
//! * [`FaultingStore`] — wraps a [`benu_kvstore::KvStore`] with the plan;
//!   faulted round trips fail *before* reaching the store, keeping byte
//!   accounting exact. On replicated stores it also routes around dead
//!   or faulted replicas (ring-order failover), so a whole-shard outage
//!   is invisible to callers as long as one copy of every value
//!   survives.
//! * [`FaultingDataSource`] — wraps any [`benu_engine::DataSource`] with
//!   the plan plus internal retry, so a bare engine can be chaos-tested
//!   unmodified.
//! * [`RetryPolicy`] — capped exponential backoff with deterministic
//!   jitter; the wait is virtual time, charged into busy-time accounting
//!   by the consumer instead of slept.
//!
//! The recovery half — per-request retry, crash-triggered task requeue,
//! straggler speculation, and the `RecoveryReport` — lives in
//! `benu-cluster`, which consumes these decorators.

pub mod plan;
pub mod retry;
pub mod source;
pub mod store;

pub use plan::{FaultError, FaultKind, FaultPlan, FaultPlanBuilder};
pub use retry::RetryPolicy;
pub use source::FaultingDataSource;
pub use store::{FaultingStore, StoreError};
