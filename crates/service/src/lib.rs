//! benu-service: a concurrent multi-query serving layer over the BENU
//! runtime.
//!
//! The batch layers (`benu-cluster`) answer one query per run. This
//! crate adds the session front end a serving deployment needs: one
//! resident data graph — sharded [`benu_kvstore::KvStore`] plus warm
//! per-worker [`benu_cache::DbCache`]s — shared by many concurrent
//! pattern queries, each submitted with its own result mode, fair-share
//! weight and budgets.
//!
//! The moving parts:
//!
//! * **Admission & plan cache** ([`QueryService::submit`]): patterns
//!   are resolved through an LRU [`PlanCache`] keyed on the
//!   automorphism-canonical form ([`benu_pattern::canonical`]), so any
//!   relabeling or automorphic image of an already-served pattern skips
//!   plan search and compilation.
//! * **Fair cross-query scheduling** (`fair`): work is granted in
//!   bounded *chunks* through a weighted round-robin over admitted
//!   queries; within a query, chunks follow the configured
//!   [`benu_cluster::SchedulerKind`] (static lanes or work stealing).
//! * **Deterministic budgets** (`commit`): deadlines (in virtual
//!   ticks), match caps, `TopK` and seeded `Sample` modes are enforced
//!   in the worker loop as early termination — evaluated at in-order
//!   chunk-commit boundaries, so results and terminal statuses are
//!   identical at any concurrency, scheduler and execution mode.
//! * **Observability**: per-query compile/queue/execute spans on the
//!   virtual clock and `service.*` registry counters, all reportable
//!   through [`QueryService::report`].
//! * **Resilience** (`error`, `admission`): with a seeded
//!   [`benu_fault::FaultPlan`] installed, every request-path failure
//!   settles exactly one query with a structured [`ServiceError`] —
//!   retry with virtual backoff and replica failover first, then
//!   [`Terminal::Failed`], or [`Terminal::DegradedPartial`] when
//!   [`ServiceConfig`] opts into absorbing shard outages. Crashed
//!   serving workers hand their uncommitted chunks to survivors with
//!   byte-identical results. Admission control sheds work over the
//!   configured backlog caps as [`Terminal::Rejected`] before anything
//!   executes. Nothing on the request path panics.
//!
//! ```
//! use benu_graph::gen;
//! use benu_pattern::queries;
//! use benu_service::{QueryOptions, QueryService, ResultMode, ServiceConfig};
//!
//! let g = gen::complete(6);
//! let service = QueryService::new(&g, ServiceConfig::default());
//! // Two queries in flight at once; the second hits the plan cache
//! // (a relabeled triangle is the same canonical pattern).
//! let a = service.submit(&queries::triangle(), QueryOptions::new());
//! let b = service.submit(
//!     &queries::triangle(),
//!     QueryOptions::new().mode(ResultMode::Collect),
//! );
//! assert_eq!(service.wait(a).matches_found, 20);
//! assert_eq!(service.wait(b).matches.len(), 20);
//! assert_eq!(service.plan_cache_stats().hits, 1);
//! ```

#![warn(missing_docs)]

mod admission;
mod commit;
mod config;
mod error;
mod fair;
mod plan_cache;
mod query;
mod service;

pub use benu_cluster::CodecKind;
pub use benu_fault::{FaultPlan, FaultPlanBuilder, RetryPolicy};
pub use config::{ServiceConfig, ServiceConfigBuilder};
pub use error::ServiceError;
pub use plan_cache::{CachedPlan, PlanCache, PlanCacheStats};
pub use query::{QueryId, QueryOptions, QueryResult, QueryStatus, ResultMode, Terminal};
pub use service::QueryService;
