//! The compiled-plan cache.
//!
//! Plan compilation (symmetry breaking, cost-model search) is the
//! expensive, per-pattern part of admission; repeat submissions of the
//! same pattern *class* — any relabeling or automorphic image — should
//! skip it. The cache keys on the automorphism-canonical form
//! ([`benu_pattern::canonical`]): entries are looked up by canonical
//! hash and verified against the canonical [`Pattern`] itself, so a
//! hash collision degrades to a miss, never to a wrong plan.
//!
//! Cached plans are compiled for the *canonical* vertex numbering; the
//! per-submission `placement` returned alongside a lookup maps
//! canonical embeddings back to the submitted numbering.

use benu_engine::CompiledPlan;
use benu_pattern::canonical::fingerprint;
use benu_pattern::{Pattern, PatternVertex};
use benu_plan::{ExecutionPlan, PlanBuilder};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One cached compilation: the canonical pattern it belongs to, the
/// chosen execution plan, and its compiled form shared by every worker
/// executing the query.
#[derive(Debug)]
pub struct CachedPlan {
    /// The canonical pattern this plan was compiled for.
    pub canonical: Pattern,
    /// The best execution plan found for the canonical pattern.
    pub plan: ExecutionPlan,
    /// The compiled register machine workers interpret.
    pub compiled: CompiledPlan,
}

/// Cache counters (monotonic over the cache's lifetime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that compiled fresh.
    pub misses: u64,
    /// Entries displaced by the LRU policy.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// An LRU cache of compiled plans keyed by canonical pattern form.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    /// LRU order: least recently used at the front. Linear scan — the
    /// cache holds tens of entries, not thousands.
    entries: Mutex<Vec<(u64, Arc<CachedPlan>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans (0 disables
    /// caching — every lookup compiles).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            entries: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Resolves `pattern` to a compiled plan: canonicalise, look up by
    /// canonical hash (verified against the canonical form), compile on
    /// a miss. Returns the shared plan, the placement mapping canonical
    /// positions to `pattern`'s vertices, and whether this was a hit.
    pub fn get_or_compile(
        &self,
        pattern: &Pattern,
        graph_vertices: usize,
        graph_edges: usize,
    ) -> (Arc<CachedPlan>, Vec<PatternVertex>, bool) {
        let form = pattern.canonical_form();
        let hash = fingerprint(&form.pattern);
        let mut entries = self.entries.lock();
        if let Some(pos) = entries
            .iter()
            .position(|(h, e)| *h == hash && e.canonical == form.pattern)
        {
            let entry = entries.remove(pos);
            let plan = Arc::clone(&entry.1);
            entries.push(entry);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (plan, form.placement, true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = PlanBuilder::new(&form.pattern)
            .graph_stats(graph_vertices, graph_edges)
            .best_plan();
        let compiled = CompiledPlan::compile(&plan);
        let cached = Arc::new(CachedPlan {
            canonical: form.pattern,
            plan,
            compiled,
        });
        if self.capacity > 0 {
            if entries.len() >= self.capacity {
                entries.remove(0);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            entries.push((hash, Arc::clone(&cached)));
        }
        (cached, form.placement, false)
    }

    /// Replaces (or inserts) the cached compilation of `canonical`'s
    /// pattern class with a freshly compiled `plan` — the
    /// feedback-replanning hook. Subsequent lookups of any pattern in
    /// the class hit the new entry; the returned compilation also serves
    /// the replacing submission directly.
    pub fn replace(&self, canonical: Pattern, plan: ExecutionPlan) -> Arc<CachedPlan> {
        let hash = fingerprint(&canonical);
        let compiled = CompiledPlan::compile(&plan);
        let cached = Arc::new(CachedPlan {
            canonical,
            plan,
            compiled,
        });
        let mut entries = self.entries.lock();
        if let Some(pos) = entries
            .iter()
            .position(|(h, e)| *h == hash && e.canonical == cached.canonical)
        {
            entries.remove(pos);
            entries.push((hash, Arc::clone(&cached)));
        } else if self.capacity > 0 {
            if entries.len() >= self.capacity {
                entries.remove(0);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            entries.push((hash, Arc::clone(&cached)));
        }
        cached
    }

    /// Current counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.entries.lock().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benu_pattern::queries;

    fn lookup(cache: &PlanCache, p: &Pattern) -> bool {
        cache.get_or_compile(p, 100, 400).2
    }

    #[test]
    fn isomorphic_submissions_hit_one_entry() {
        let cache = PlanCache::new(8);
        assert!(!lookup(&cache, &queries::square()), "first compile");
        // A relabeled square must hit the same entry.
        let relabeled = Pattern::from_edges(4, &[(0, 2), (2, 1), (1, 3), (3, 0)]);
        assert!(lookup(&cache, &relabeled), "relabeling must hit");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = PlanCache::new(2);
        lookup(&cache, &queries::triangle());
        lookup(&cache, &queries::square());
        lookup(&cache, &queries::triangle()); // triangle now most recent
        lookup(&cache, &queries::path(4)); // evicts square
        assert!(lookup(&cache, &queries::triangle()), "survivor stays");
        assert!(!lookup(&cache, &queries::square()), "evictee recompiles");
        assert_eq!(
            cache.stats().evictions,
            2,
            "path evicted square, square evicted path(4)"
        );
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0);
        lookup(&cache, &queries::triangle());
        assert!(!lookup(&cache, &queries::triangle()));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 2, 0));
    }

    #[test]
    fn cached_plans_are_usable_counts() {
        // The cached compilation must count like a fresh one.
        let g = benu_graph::gen::complete(6);
        let cache = PlanCache::new(4);
        let (cached, placement, _) =
            cache.get_or_compile(&queries::triangle(), g.num_vertices(), g.num_edges());
        assert_eq!(placement.len(), 3);
        assert_eq!(benu_engine::count_embeddings(&cached.plan, &g), 20);
    }
}
