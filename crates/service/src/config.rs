//! Serving-layer configuration.

use benu_cluster::{CodecKind, ExecMode, SchedulerKind};
use benu_fault::{FaultPlan, RetryPolicy};
use std::sync::Arc;
use std::time::Duration;

/// Shape and tuning of the query service. One service owns one resident
/// data graph: a sharded [`benu_kvstore::KvStore`] plus one warm
/// database cache per serving worker, shared by every admitted query.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceConfig {
    /// Serving worker threads. Each worker owns a persistent database
    /// cache (warm across queries) and one store transport, mirroring a
    /// machine of the batch cluster.
    pub workers: usize,
    /// Database-cache capacity per worker, in bytes.
    pub cache_capacity_bytes: usize,
    /// Internal shard count of each worker's cache.
    pub cache_shards: usize,
    /// Task-splitting threshold τ applied to every query (0 disables
    /// splitting) unless [`ServiceConfig::tau_auto`] is set.
    pub tau: usize,
    /// Pick τ per query from the degree distribution (recommended: the
    /// adaptive choice splits heavy-start tasks for balance). The
    /// adaptive τ targets a fixed virtual lane count — not `workers` —
    /// so the task list, chunk boundaries and virtual-time accounting
    /// are identical at any concurrency.
    pub tau_auto: bool,
    /// Within-query chunk placement policy. [`SchedulerKind::Static`]
    /// pins a query's chunks to lanes round-robin;
    /// [`SchedulerKind::WorkStealing`] lets idle lanes steal them. The
    /// *cross*-query policy is always weighted round-robin (see
    /// `fair`); this knob only shapes intra-query balance.
    pub scheduler: SchedulerKind,
    /// Default execution mode for queries that don't override it.
    pub exec_mode: ExecMode,
    /// Per-worker frontier byte budget for hybrid execution (0 =
    /// unbounded).
    pub memory_budget_bytes: usize,
    /// Per-chunk triangle-cache entries.
    pub triangle_cache_entries: usize,
    /// Run engines with pooled execution buffers.
    pub pooled_buffers: bool,
    /// Compiled plans retained by the plan cache (LRU over canonical
    /// pattern forms; 0 disables caching).
    pub plan_cache_entries: usize,
    /// Tasks per scheduling chunk — the pull, fairness and budget-commit
    /// granularity. A worker books at most one chunk before the fair
    /// queue may rotate to another query, and budgets are evaluated at
    /// chunk boundaries so committed results are independent of worker
    /// count and scheduler choice.
    pub chunk_tasks: usize,
    /// Shard count of the resident store (0 = one shard per worker).
    /// Sharding is a property of the *deployment*, not of the local
    /// worker pool: injected fault decisions are keyed by `(shard,
    /// vertex)`, so pinning this makes failure outcomes — not just
    /// results — identical across worker counts.
    pub store_shards: usize,
    /// Store replication factor (shards ring-replicate as in the batch
    /// cluster).
    pub replication: usize,
    /// Wire codec for stored adjacency values, fixed when the resident
    /// graph is loaded. Every query served afterwards reads the same
    /// bytes; decoded sets are byte-identical across codecs.
    pub codec: CodecKind,
    /// Deterministic fault injection for the serving data path. Each
    /// admitted query draws its own per-request decision stream
    /// ([`FaultPlan::scoped`] by query id) while structural faults —
    /// shard outages, slow shards, worker crashes — are shared, so the
    /// set of queries a given seed fails is reproducible regardless of
    /// thread timing or cache state. `None` serves faultlessly.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// How serving workers retry injected transient faults and
    /// timeouts (virtual backoff, never slept). Ignored without a
    /// fault plan.
    pub retry: RetryPolicy,
    /// Admission cap on queries that are admitted but not yet terminal
    /// (0 = unbounded). A submission over the cap is shed with
    /// [`crate::Terminal::Rejected`] instead of queued.
    pub max_inflight_queries: usize,
    /// Admission cap on un-granted chunks across every admitted query
    /// (0 = unbounded). A submission whose chunks would push the queue
    /// past the cap is shed with [`crate::Terminal::Rejected`].
    pub max_queued_chunks: usize,
    /// Deadline-aware load shedding: refuse a query whose virtual-time
    /// deadline is below the backlog's minimum drain cost — one vtick
    /// per task over the `queued_chunks × chunk_tasks` tasks already
    /// waiting. Per-query budgets are never charged for queue time, so
    /// this gate is a service-level urgency heuristic, not a change to
    /// deadline semantics: a tight deadline declares the query urgent,
    /// and a backlogged service sheds it up front instead of serving it
    /// late. Off by default — a zero deadline then still admits and
    /// settles as [`crate::Terminal::DeadlineExceeded`].
    pub admission_deadline_aware: bool,
    /// Absorb unrecoverable shard outages instead of failing the query:
    /// chunks whose data is dark are skipped, every reachable chunk
    /// commits, and the query settles as
    /// [`crate::Terminal::DegradedPartial`] naming the dark shards.
    /// Off by default (an outage then fails the affected query).
    pub graceful_degradation: bool,
    /// Feedback-driven re-planning: record the per-instruction observed
    /// cardinalities of every exhaustively completed query against its
    /// plan-cache canonical key, and recompile the cached plan with a
    /// [`benu_plan::FeedbackEstimator`] the next time the pattern class
    /// is submitted. One recompilation per class; re-planning is a pure
    /// function of the recorded observation, so a sequential
    /// submit–wait–submit sequence is byte-deterministic. Off by
    /// default.
    pub feedback_replanning: bool,
    /// Backstop poll interval of the worker/waiter condvar signals: a
    /// missed wakeup degrades to a poll at this cadence, never a hang.
    pub signal_poll: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            cache_capacity_bytes: 64 << 20,
            cache_shards: 8,
            tau: 0,
            tau_auto: true,
            scheduler: SchedulerKind::WorkStealing,
            exec_mode: ExecMode::Dfs,
            memory_budget_bytes: 0,
            triangle_cache_entries: 1 << 14,
            pooled_buffers: true,
            plan_cache_entries: 32,
            chunk_tasks: 64,
            store_shards: 0,
            replication: 1,
            codec: CodecKind::RawU32,
            fault_plan: None,
            retry: RetryPolicy::default(),
            max_inflight_queries: 0,
            max_queued_chunks: 0,
            admission_deadline_aware: false,
            graceful_degradation: false,
            feedback_replanning: false,
            signal_poll: Duration::from_millis(10),
        }
    }
}

impl ServiceConfig {
    /// Starts a builder from the defaults.
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder(ServiceConfig::default())
    }

    /// The store shard count this configuration resolves to.
    pub fn resolved_store_shards(&self) -> usize {
        if self.store_shards == 0 {
            self.workers
        } else {
            self.store_shards
        }
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics on zero workers, cache shards or chunk size, or a
    /// replication factor outside `1..=store shards`.
    pub fn validate(&self) {
        assert!(self.workers >= 1, "need at least one worker");
        assert!(self.cache_shards >= 1, "need at least one cache shard");
        assert!(self.chunk_tasks >= 1, "need at least one task per chunk");
        assert!(
            (1..=self.resolved_store_shards()).contains(&self.replication),
            "replication factor must be within 1..=store shards"
        );
        assert!(
            !self.signal_poll.is_zero(),
            "signal poll interval must be positive (it is the missed-wakeup backstop)"
        );
        self.retry.validate();
    }
}

/// Fluent builder for [`ServiceConfig`].
#[derive(Clone, Debug)]
pub struct ServiceConfigBuilder(ServiceConfig);

impl ServiceConfigBuilder {
    /// Serving worker threads.
    pub fn workers(mut self, n: usize) -> Self {
        self.0.workers = n;
        self
    }

    /// Per-worker database-cache capacity in bytes.
    pub fn cache_capacity_bytes(mut self, n: usize) -> Self {
        self.0.cache_capacity_bytes = n;
        self
    }

    /// Internal cache shard count.
    pub fn cache_shards(mut self, n: usize) -> Self {
        self.0.cache_shards = n;
        self
    }

    /// Task-splitting threshold τ (disables the adaptive choice).
    pub fn tau(mut self, tau: usize) -> Self {
        self.0.tau = tau;
        self.0.tau_auto = false;
        self
    }

    /// Pick τ adaptively from the degree distribution.
    pub fn tau_auto(mut self, yes: bool) -> Self {
        self.0.tau_auto = yes;
        self
    }

    /// Within-query chunk placement policy.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.0.scheduler = kind;
        self
    }

    /// Default execution mode.
    pub fn exec_mode(mut self, mode: ExecMode) -> Self {
        self.0.exec_mode = mode;
        self
    }

    /// Per-worker frontier byte budget for hybrid execution.
    pub fn memory_budget_bytes(mut self, n: usize) -> Self {
        self.0.memory_budget_bytes = n;
        self
    }

    /// Per-chunk triangle-cache entries.
    pub fn triangle_cache_entries(mut self, n: usize) -> Self {
        self.0.triangle_cache_entries = n;
        self
    }

    /// Run engines with pooled execution buffers.
    pub fn pooled_buffers(mut self, yes: bool) -> Self {
        self.0.pooled_buffers = yes;
        self
    }

    /// Compiled plans retained by the plan cache.
    pub fn plan_cache_entries(mut self, n: usize) -> Self {
        self.0.plan_cache_entries = n;
        self
    }

    /// Tasks per scheduling chunk (pull/fairness/budget granularity).
    pub fn chunk_tasks(mut self, n: usize) -> Self {
        self.0.chunk_tasks = n;
        self
    }

    /// Shard count of the resident store (0 = one shard per worker).
    pub fn store_shards(mut self, n: usize) -> Self {
        self.0.store_shards = n;
        self
    }

    /// Store replication factor.
    pub fn replication(mut self, r: usize) -> Self {
        self.0.replication = r;
        self
    }

    /// Wire codec for stored adjacency values.
    pub fn codec(mut self, codec: CodecKind) -> Self {
        self.0.codec = codec;
        self
    }

    /// Installs a deterministic fault plan on the serving data path.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.0.fault_plan = Some(Arc::new(plan));
        self
    }

    /// Retry policy for injected transient faults and timeouts.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.0.retry = retry;
        self
    }

    /// Admission cap on non-terminal queries (0 = unbounded).
    pub fn max_inflight_queries(mut self, n: usize) -> Self {
        self.0.max_inflight_queries = n;
        self
    }

    /// Admission cap on queued chunks across queries (0 = unbounded).
    pub fn max_queued_chunks(mut self, n: usize) -> Self {
        self.0.max_queued_chunks = n;
        self
    }

    /// Shed queries whose deadline the current backlog cannot meet.
    pub fn admission_deadline_aware(mut self, yes: bool) -> Self {
        self.0.admission_deadline_aware = yes;
        self
    }

    /// Absorb unrecoverable shard outages as degraded partial results.
    pub fn graceful_degradation(mut self, yes: bool) -> Self {
        self.0.graceful_degradation = yes;
        self
    }

    /// Re-plan repeat pattern classes from observed cardinalities.
    pub fn feedback_replanning(mut self, yes: bool) -> Self {
        self.0.feedback_replanning = yes;
        self
    }

    /// Backstop poll interval of the condvar signals.
    pub fn signal_poll(mut self, poll: Duration) -> Self {
        self.0.signal_poll = poll;
        self
    }

    /// Finishes the builder.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`ServiceConfig::validate`]).
    pub fn build(self) -> ServiceConfig {
        self.0.validate();
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_covers_every_field() {
        let plan = FaultPlan::builder(9).transient_rate(0.01).build();
        let retry = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let built = ServiceConfig::builder()
            .workers(3)
            .cache_capacity_bytes(1 << 20)
            .cache_shards(2)
            .tau(25)
            .tau_auto(false)
            .scheduler(SchedulerKind::Static)
            .exec_mode(ExecMode::Hybrid)
            .memory_budget_bytes(4 << 10)
            .triangle_cache_entries(64)
            .pooled_buffers(false)
            .plan_cache_entries(5)
            .chunk_tasks(16)
            .store_shards(4)
            .replication(2)
            .codec(CodecKind::DeltaVarint)
            .fault_plan(plan.clone())
            .retry(retry)
            .max_inflight_queries(8)
            .max_queued_chunks(100)
            .admission_deadline_aware(true)
            .graceful_degradation(true)
            .feedback_replanning(true)
            .signal_poll(Duration::from_millis(2))
            .build();
        let literal = ServiceConfig {
            workers: 3,
            cache_capacity_bytes: 1 << 20,
            cache_shards: 2,
            tau: 25,
            tau_auto: false,
            scheduler: SchedulerKind::Static,
            exec_mode: ExecMode::Hybrid,
            memory_budget_bytes: 4 << 10,
            triangle_cache_entries: 64,
            pooled_buffers: false,
            plan_cache_entries: 5,
            chunk_tasks: 16,
            store_shards: 4,
            replication: 2,
            codec: CodecKind::DeltaVarint,
            fault_plan: Some(Arc::new(plan)),
            retry,
            max_inflight_queries: 8,
            max_queued_chunks: 100,
            admission_deadline_aware: true,
            graceful_degradation: true,
            feedback_replanning: true,
            signal_poll: Duration::from_millis(2),
        };
        assert_eq!(built, literal, "every builder method must land");
    }

    #[test]
    #[should_panic(expected = "poll interval must be positive")]
    fn zero_signal_poll_is_rejected() {
        ServiceConfig::builder().signal_poll(Duration::ZERO).build();
    }

    #[test]
    #[should_panic(expected = "at least one task per chunk")]
    fn zero_chunk_is_rejected() {
        ServiceConfig::builder().chunk_tasks(0).build();
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn over_replication_is_rejected() {
        ServiceConfig::builder().workers(2).replication(3).build();
    }
}
