//! Query identities, per-query options (budgets, result modes) and the
//! structured results the service hands back.

use benu_cluster::ExecMode;
use benu_engine::TaskMetrics;
use benu_graph::VertexId;
use std::time::Duration;

/// Identifies one submitted query for the lifetime of a service
/// (sequential from 0 in admission order).
pub type QueryId = u64;

/// What a query delivers. Every mode is enforced *inside* the worker
/// loop as early termination at chunk boundaries — a satisfied `TopK`
/// or an exhausted budget makes the service drop the query's remaining
/// chunks, not filter a full result afterwards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResultMode {
    /// Count matches only (no embeddings materialised).
    CountOnly,
    /// Materialise every embedding, indexed by the submitted pattern's
    /// vertex numbering.
    Collect,
    /// The first `k` embeddings in deterministic commit order (chunks in
    /// task order, embeddings sorted within each chunk) — LIMIT-style
    /// semantics, terminating early once `k` are committed.
    TopK(usize),
    /// A seeded reservoir sample of `n` embeddings over the full
    /// deterministic match stream. Runs to completion (the count is
    /// exact); the sample is a pure function of `(stream, seed)`.
    Sample {
        /// Reservoir size.
        n: usize,
        /// Reservoir RNG seed.
        seed: u64,
    },
}

impl ResultMode {
    /// Whether the engine must materialise embeddings for this mode.
    pub(crate) fn needs_matches(&self) -> bool {
        !matches!(self, ResultMode::CountOnly)
    }

    /// Stable lower-case name (reports, logs).
    pub fn name(&self) -> &'static str {
        match self {
            ResultMode::CountOnly => "count",
            ResultMode::Collect => "collect",
            ResultMode::TopK(_) => "top_k",
            ResultMode::Sample { .. } => "sample",
        }
    }
}

/// Per-query admission options: result mode, fair-share weight and
/// budgets. Budgets are evaluated deterministically at chunk-commit
/// boundaries in task order, so a budgeted query reports the same
/// result at any concurrency level, scheduler or execution mode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryOptions {
    /// Result mode (see [`ResultMode`]).
    pub mode: ResultMode,
    /// Fair-share weight: chunks granted per round of the cross-query
    /// round-robin (≥ 1).
    pub weight: u32,
    /// Virtual-time budget in engine ticks (a deterministic function of
    /// the work committed: instruction executions plus candidate
    /// enumerations). The first chunk boundary at or past the deadline
    /// terminates the query with [`Terminal::DeadlineExceeded`].
    pub deadline_vticks: Option<u64>,
    /// Cap on committed matches; crossing it clamps the count and
    /// terminates with [`Terminal::MaxMatchesReached`].
    pub max_matches: Option<u64>,
    /// Execution-mode override for this query (service default when
    /// `None`).
    pub exec_mode: Option<ExecMode>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            mode: ResultMode::CountOnly,
            weight: 1,
            deadline_vticks: None,
            max_matches: None,
            exec_mode: None,
        }
    }
}

impl QueryOptions {
    /// Default options: count-only, weight 1, no budgets.
    pub fn new() -> Self {
        QueryOptions::default()
    }

    /// Sets the result mode.
    pub fn mode(mut self, mode: ResultMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the fair-share weight (clamped to ≥ 1).
    pub fn weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Sets the virtual-time deadline in engine ticks.
    pub fn deadline_vticks(mut self, ticks: u64) -> Self {
        self.deadline_vticks = Some(ticks);
        self
    }

    /// Caps the number of committed matches.
    pub fn max_matches(mut self, max: u64) -> Self {
        self.max_matches = Some(max);
        self
    }

    /// Overrides the execution mode for this query.
    pub fn exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = Some(mode);
        self
    }
}

/// Why a query stopped — always structured, never a silent partial
/// count and never a process abort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Terminal {
    /// The query ran to its natural end: enumeration exhausted, or a
    /// `TopK` request satisfied.
    Completed,
    /// The `max_matches` budget was crossed; the count is clamped to
    /// the cap.
    MaxMatchesReached,
    /// The virtual-time deadline passed; committed work up to the
    /// crossing chunk boundary is reported, the rest was released.
    DeadlineExceeded,
    /// [`crate::QueryService::cancel`] was called before completion.
    Cancelled,
    /// The request path hit an unrecoverable error — retry budget
    /// spent, shard outage, corrupt value, or the whole worker pool
    /// lost. Only this query fails; siblings are unaffected. The error
    /// is the lowest-chunk-indexed failure in commit order, so it is a
    /// deterministic function of the fault seed.
    Failed(crate::error::ServiceError),
    /// The query was hit by an unrecoverable shard outage while
    /// [`crate::ServiceConfig::graceful_degradation`] was on: every
    /// reachable chunk committed, chunks needing the dark shards were
    /// skipped, and [`QueryResult::dark_shards`] names the outage.
    DegradedPartial,
    /// Admission control shed the query (inflight or queue cap hit, or
    /// a deadline the current backlog cannot meet). Nothing executed;
    /// resubmitting after roughly `retry_after_vticks` of service
    /// virtual time is the caller's move.
    Rejected {
        /// A lower bound on the service virtual time needed to drain
        /// the backlog that caused the shed.
        retry_after_vticks: u64,
    },
}

impl Terminal {
    /// Stable lower-case name (reports, logs).
    pub fn name(&self) -> &'static str {
        match self {
            Terminal::Completed => "completed",
            Terminal::MaxMatchesReached => "max_matches_reached",
            Terminal::DeadlineExceeded => "deadline_exceeded",
            Terminal::Cancelled => "cancelled",
            Terminal::Failed(_) => "failed",
            Terminal::DegradedPartial => "degraded_partial",
            Terminal::Rejected { .. } => "rejected",
        }
    }
}

/// A non-blocking view of a query's lifecycle.
// A `Finished` status carries the full result by value; the enum is a
// transient poll return, never stored in bulk, so the size skew is
// preferable to handing callers a box.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum QueryStatus {
    /// Admitted, no chunk executed yet.
    Queued,
    /// At least one chunk pulled by a worker.
    Running,
    /// Terminal; the result is final.
    Finished(QueryResult),
}

/// The final, structured outcome of one query.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryResult {
    /// The query this result belongs to.
    pub id: QueryId,
    /// Why the query stopped.
    pub terminal: Terminal,
    /// Matches committed. Exact iff [`QueryResult::exhaustive`]; for
    /// `MaxMatchesReached` it equals the cap; for `Cancelled` /
    /// `DeadlineExceeded` it covers committed chunks only.
    pub matches_found: u64,
    /// Materialised embeddings per the result mode, indexed by the
    /// *submitted* pattern's vertex numbering (plan-cache remapping is
    /// internal). Empty for `CountOnly`.
    pub matches: Vec<Vec<VertexId>>,
    /// Committed virtual-time ticks — the query's deterministic
    /// latency measure.
    pub vticks: u64,
    /// Chunks whose results were committed.
    pub chunks_committed: usize,
    /// Chunks released without contributing (early termination,
    /// cancellation).
    pub chunks_discarded: usize,
    /// Whether the compiled plan came from the plan cache.
    pub plan_cache_hit: bool,
    /// True iff every chunk committed — the enumeration was exhaustive
    /// (a satisfied `TopK` is `Completed` but not exhaustive).
    pub exhaustive: bool,
    /// Shards that were dark for chunks this query had to skip, in
    /// ascending order. Non-empty only for
    /// [`Terminal::DegradedPartial`]: the committed result is the
    /// deterministic truth about every other shard.
    pub dark_shards: Vec<usize>,
    /// Service-wide completion sequence number (0 = first query to
    /// finish) — pins cross-query completion ordering in tests.
    pub completion_index: u64,
    /// Engine metrics summed over committed chunks.
    pub metrics: TaskMetrics,
    /// Wall-clock time from submission to the terminal transition.
    /// Excluded from deterministic reports.
    pub wall: Duration,
}

impl QueryResult {
    /// True when the reported count may undercount the graph (the query
    /// was cancelled, deadline-exceeded, or match-capped).
    pub fn is_partial(&self) -> bool {
        self.terminal != Terminal::Completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_builder_sets_fields() {
        let o = QueryOptions::new()
            .mode(ResultMode::TopK(5))
            .weight(0)
            .deadline_vticks(100)
            .max_matches(7)
            .exec_mode(ExecMode::Hybrid);
        assert_eq!(o.mode, ResultMode::TopK(5));
        assert_eq!(o.weight, 1, "weight clamps to >= 1");
        assert_eq!(o.deadline_vticks, Some(100));
        assert_eq!(o.max_matches, Some(7));
        assert_eq!(o.exec_mode, Some(ExecMode::Hybrid));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ResultMode::CountOnly.name(), "count");
        assert_eq!(ResultMode::Sample { n: 1, seed: 0 }.name(), "sample");
        assert_eq!(Terminal::DeadlineExceeded.name(), "deadline_exceeded");
        assert_eq!(Terminal::DegradedPartial.name(), "degraded_partial");
        assert_eq!(
            Terminal::Rejected {
                retry_after_vticks: 7
            }
            .name(),
            "rejected"
        );
        assert_eq!(
            Terminal::Failed(crate::error::ServiceError::WorkerLost { lane: 0, chunk: 0 }).name(),
            "failed"
        );
    }
}
