//! The deterministic chunk-commit pipeline.
//!
//! Workers execute chunks in whatever order the fair queue and thread
//! timing produce, but a query's *observable* result — count, match
//! stream, budget cut-off — is defined over chunks committed in task
//! order. [`CommitState`] buffers out-of-order arrivals and commits
//! strictly in chunk order; budgets are evaluated only at commit
//! boundaries, so a budgeted query terminates at the same point in the
//! stream regardless of worker count, scheduler, or execution mode:
//!
//! * the virtual-time deadline is a *pre*-commit check (a chunk whose
//!   commit would start at or past the deadline is dropped, so a
//!   deadline of 0 commits nothing), and
//! * `max_matches` / `TopK` clamp *within* the boundary chunk, taking a
//!   prefix of its sorted matches.
//!
//! Each chunk's matches arrive already remapped to the submitted
//! numbering and sorted, so the concatenation over committed chunks is
//! one deterministic stream — what [`Sink::Sample`]'s seeded reservoir
//! and [`Sink::TopK`]'s prefix are defined over.

use crate::error::ServiceError;
use crate::query::{ResultMode, Terminal};
use benu_engine::TaskMetrics;
use benu_graph::VertexId;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// One executed chunk as reported by a worker.
#[derive(Debug)]
pub(crate) struct ExecutedChunk {
    /// Chunk index in `0..total_chunks`.
    pub chunk: usize,
    /// Matches in submitted numbering, sorted (empty for `CountOnly`).
    pub matches: Vec<Vec<VertexId>>,
    /// Matches found by the chunk (equals `matches.len()` whenever the
    /// mode materialises).
    pub count: u64,
    /// Virtual ticks of the chunk: tasks + instruction executions +
    /// candidate enumerations — a pure function of the work done.
    pub vticks: u64,
    /// Engine metrics of the chunk.
    pub metrics: TaskMetrics,
}

/// What a worker reported for one chunk: results, or the first error
/// its deterministic access stream hit. Failures ride the same
/// in-order pipeline as results, so the error (or dark shard) a query
/// surfaces is always the lowest-indexed failing chunk's — independent
/// of worker timing.
#[derive(Debug)]
enum ChunkOutcome {
    // Boxed: an `ExecutedChunk` is hundreds of bytes, `Failed` a handful,
    // and outcomes sit in the reorder map until their turn to commit.
    Executed(Box<ExecutedChunk>),
    Failed { error: ServiceError },
}

/// The final components of a finished commit pipeline.
pub(crate) struct CommitOutcome {
    pub terminal: Terminal,
    pub matches_found: u64,
    pub matches: Vec<Vec<VertexId>>,
    pub vticks: u64,
    pub committed: usize,
    pub discarded: usize,
    /// Dark shards behind skipped (degraded) chunks, ascending.
    pub dark_shards: Vec<usize>,
    pub exhaustive: bool,
    pub metrics: TaskMetrics,
}

/// Where committed matches go, per result mode.
pub(crate) enum Sink {
    /// Count only; nothing materialised.
    Count,
    /// Keep everything.
    Collect(Vec<Vec<VertexId>>),
    /// Keep the first `k` of the deterministic stream.
    TopK { k: usize, kept: Vec<Vec<VertexId>> },
    /// Algorithm-R reservoir over the deterministic stream.
    Sample {
        n: usize,
        rng: ChaCha8Rng,
        seen: u64,
        reservoir: Vec<Vec<VertexId>>,
    },
}

impl Sink {
    fn new(mode: &ResultMode) -> Self {
        match *mode {
            ResultMode::CountOnly => Sink::Count,
            ResultMode::Collect => Sink::Collect(Vec::new()),
            ResultMode::TopK(k) => Sink::TopK {
                k,
                kept: Vec::new(),
            },
            ResultMode::Sample { n, seed } => Sink::Sample {
                n,
                rng: ChaCha8Rng::seed_from_u64(seed),
                seen: 0,
                reservoir: Vec::new(),
            },
        }
    }

    /// `TopK`'s remaining appetite; unbounded for the other sinks.
    fn remaining(&self, committed: u64) -> Option<u64> {
        match self {
            Sink::TopK { k, .. } => Some((*k as u64).saturating_sub(committed)),
            _ => None,
        }
    }

    fn accept(&mut self, m: Vec<VertexId>) {
        match self {
            Sink::Count => {}
            Sink::Collect(all) => all.push(m),
            Sink::TopK { k, kept } => {
                if kept.len() < *k {
                    kept.push(m);
                }
            }
            Sink::Sample {
                n,
                rng,
                seen,
                reservoir,
            } => {
                *seen += 1;
                if reservoir.len() < *n {
                    reservoir.push(m);
                } else if *n > 0 {
                    let j = rng.next_u64() % *seen;
                    if (j as usize) < *n {
                        reservoir[j as usize] = m;
                    }
                }
            }
        }
    }

    fn into_matches(self) -> Vec<Vec<VertexId>> {
        match self {
            Sink::Count => Vec::new(),
            Sink::Collect(all) => all,
            Sink::TopK { kept, .. } => kept,
            Sink::Sample { reservoir, .. } => reservoir,
        }
    }
}

/// In-order commit state of one query. All methods run under the
/// query's lock; workers only *execute* concurrently.
pub(crate) struct CommitState {
    total_chunks: usize,
    /// Next chunk index eligible to commit.
    next: usize,
    /// Executed chunks waiting for their predecessors.
    pending: BTreeMap<usize, ChunkOutcome>,
    committed: usize,
    discarded: usize,
    /// Chunks skipped dark under graceful degradation.
    dark: usize,
    dark_shards: Vec<usize>,
    /// Absorb degradable failures instead of failing the query.
    degrade: bool,
    matches_found: u64,
    vticks: u64,
    metrics: TaskMetrics,
    sink: Sink,
    deadline: Option<u64>,
    max_matches: Option<u64>,
    terminal: Option<Terminal>,
}

impl CommitState {
    pub(crate) fn new(
        total_chunks: usize,
        mode: &ResultMode,
        deadline: Option<u64>,
        max_matches: Option<u64>,
        degrade: bool,
    ) -> Self {
        let mut state = CommitState {
            total_chunks,
            next: 0,
            pending: BTreeMap::new(),
            committed: 0,
            discarded: 0,
            dark: 0,
            dark_shards: Vec::new(),
            degrade,
            matches_found: 0,
            vticks: 0,
            metrics: TaskMetrics::default(),
            sink: Sink::new(mode),
            deadline,
            max_matches,
            terminal: None,
        };
        // A pattern with no start tasks (or `TopK(0)`) is terminal at
        // admission.
        if total_chunks == 0 {
            state.terminal = Some(Terminal::Completed);
        } else if state.sink.remaining(0) == Some(0) {
            state.set_terminal(Terminal::Completed);
        } else if deadline == Some(0) {
            state.set_terminal(Terminal::DeadlineExceeded);
        } else if max_matches == Some(0) {
            state.set_terminal(Terminal::MaxMatchesReached);
        }
        state
    }

    /// Records a chunk that executed, commits every in-order chunk that
    /// became eligible, and evaluates budgets at each boundary.
    pub(crate) fn submit(&mut self, chunk: ExecutedChunk) {
        self.submit_outcome(chunk.chunk, ChunkOutcome::Executed(Box::new(chunk)));
    }

    /// Records a chunk whose execution hit an unrecoverable error. The
    /// failure is evaluated at the chunk's in-order commit position:
    /// under graceful degradation a degradable error marks the chunk
    /// dark (no matches, no vticks) and commits continue; otherwise the
    /// query settles as [`Terminal::Failed`] with this error — making
    /// the surfaced error the lowest-indexed failure, deterministically.
    pub(crate) fn submit_failed(&mut self, chunk: usize, error: ServiceError) {
        self.submit_outcome(chunk, ChunkOutcome::Failed { error });
    }

    fn submit_outcome(&mut self, index: usize, outcome: ChunkOutcome) {
        if self.terminal.is_some() {
            self.discarded += 1;
            return;
        }
        self.pending.insert(index, outcome);
        while self.terminal.is_none() {
            let Some(outcome) = self.pending.remove(&self.next) else {
                break;
            };
            match outcome {
                ChunkOutcome::Executed(chunk) => self.commit(*chunk),
                ChunkOutcome::Failed { error } => self.commit_failed(error),
            }
        }
        if self.committed + self.dark == self.total_chunks && self.terminal.is_none() {
            self.terminal = Some(if self.dark > 0 {
                Terminal::DegradedPartial
            } else {
                Terminal::Completed
            });
        }
        if self.terminal.is_some() {
            self.flush_pending();
        }
    }

    /// A failed chunk at its in-order boundary. The deadline pre-check
    /// still wins (a query past its budget is `DeadlineExceeded`, not
    /// `Failed` — same precedence as for a successful chunk).
    fn commit_failed(&mut self, error: ServiceError) {
        if self.deadline.is_some_and(|d| self.vticks >= d) {
            self.set_terminal(Terminal::DeadlineExceeded);
            self.discarded += 1;
            return;
        }
        if self.degrade && error.is_degradable() {
            if let Some(shard) = error.dark_shard() {
                if !self.dark_shards.contains(&shard) {
                    self.dark_shards.push(shard);
                }
            }
            self.dark += 1;
            self.next += 1;
            return;
        }
        self.set_terminal(Terminal::Failed(error));
        self.discarded += 1;
    }

    fn commit(&mut self, chunk: ExecutedChunk) {
        debug_assert_eq!(chunk.chunk, self.next);
        if self.deadline.is_some_and(|d| self.vticks >= d) {
            self.set_terminal(Terminal::DeadlineExceeded);
            self.discarded += 1;
            return;
        }
        // Clamp the chunk's contribution to the tighter of the remaining
        // `TopK` appetite and the remaining match budget.
        let mut take = chunk.count;
        let mut capped = false;
        if let Some(rem) = self.sink.remaining(self.matches_found) {
            take = take.min(rem);
        }
        if let Some(max) = self.max_matches {
            let rem = max.saturating_sub(self.matches_found);
            if take > rem {
                take = rem;
                capped = true;
            }
        }
        for m in chunk.matches.into_iter().take(take as usize) {
            self.sink.accept(m);
        }
        self.matches_found += take;
        self.vticks += chunk.vticks;
        self.metrics += chunk.metrics;
        self.committed += 1;
        self.next += 1;
        if self.sink.remaining(self.matches_found) == Some(0) {
            // A satisfied `TopK` is a *completed* query (LIMIT reached),
            // just not an exhaustive one.
            self.set_terminal(Terminal::Completed);
        } else if capped || self.max_matches == Some(self.matches_found) {
            self.set_terminal(Terminal::MaxMatchesReached);
        }
    }

    /// Accounts a chunk that was released without executing (drained
    /// from the fair queue, or skipped by a worker after termination).
    pub(crate) fn skip(&mut self, n: usize) {
        self.discarded += n;
    }

    /// Forces a terminal state (cancellation, budget) if the query is
    /// not already terminal; pending chunks are discarded. Returns true
    /// when this call made the transition.
    pub(crate) fn set_terminal(&mut self, terminal: Terminal) -> bool {
        if self.terminal.is_some() {
            return false;
        }
        self.terminal = Some(terminal);
        self.flush_pending();
        true
    }

    fn flush_pending(&mut self) {
        self.discarded += self.pending.len();
        self.pending.clear();
    }

    pub(crate) fn terminal(&self) -> Option<&Terminal> {
        self.terminal.as_ref()
    }

    /// The next chunk index eligible to commit — the first chunk whose
    /// work is lost when the whole worker pool dies.
    pub(crate) fn next_chunk(&self) -> usize {
        self.next
    }

    /// Every chunk accounted for — the query can finalise.
    pub(crate) fn is_complete(&self) -> bool {
        self.terminal.is_some() && self.committed + self.discarded + self.dark == self.total_chunks
    }

    /// Tears the state down into its result components. Dark chunks are
    /// folded into `discarded` (they contributed nothing); the dark
    /// shards behind them are reported separately.
    pub(crate) fn finish(mut self) -> CommitOutcome {
        debug_assert!(self.is_complete());
        self.dark_shards.sort_unstable();
        CommitOutcome {
            terminal: self.terminal.unwrap_or(Terminal::Completed),
            matches_found: self.matches_found,
            matches: self.sink.into_matches(),
            vticks: self.vticks,
            committed: self.committed,
            discarded: self.discarded + self.dark,
            dark_shards: self.dark_shards,
            exhaustive: self.committed == self.total_chunks,
            metrics: self.metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(i: usize, matches: Vec<Vec<VertexId>>, vticks: u64) -> ExecutedChunk {
        ExecutedChunk {
            chunk: i,
            count: matches.len() as u64,
            matches,
            vticks,
            metrics: TaskMetrics::default(),
        }
    }

    fn m(v: VertexId) -> Vec<VertexId> {
        vec![v]
    }

    fn outage(v: VertexId, shard: usize) -> ServiceError {
        ServiceError::StoreUnavailable { vertex: v, shard }
    }

    #[test]
    fn out_of_order_submission_commits_in_order() {
        let mut s = CommitState::new(3, &ResultMode::Collect, None, None, false);
        s.submit(chunk(2, vec![m(2)], 1));
        s.submit(chunk(0, vec![m(0)], 1));
        assert!(s.terminal().is_none(), "chunk 1 still outstanding");
        s.submit(chunk(1, vec![m(1)], 1));
        assert!(s.is_complete());
        let out = s.finish();
        assert_eq!(out.terminal, Terminal::Completed);
        assert_eq!(out.matches_found, 3);
        assert_eq!(
            out.matches,
            vec![m(0), m(1), m(2)],
            "stream is chunk-ordered"
        );
        assert_eq!(out.vticks, 3);
    }

    #[test]
    fn deadline_is_checked_before_commit() {
        // Deadline 2: chunk 0 (2 ticks) commits, chunk 1 hits the
        // boundary and is dropped — a deadline of 0 would commit nothing.
        let mut s = CommitState::new(2, &ResultMode::CountOnly, Some(2), None, false);
        s.submit(chunk(0, vec![m(0), m(1)], 2));
        s.submit(chunk(1, vec![m(2)], 1));
        assert!(s.is_complete());
        let out = s.finish();
        assert_eq!(out.terminal, Terminal::DeadlineExceeded);
        assert_eq!((out.matches_found, out.vticks), (2, 2));
        assert_eq!((out.committed, out.discarded), (1, 1));
        assert!(!out.exhaustive);
    }

    #[test]
    fn zero_deadline_commits_nothing() {
        let mut s = CommitState::new(2, &ResultMode::CountOnly, Some(0), None, false);
        assert_eq!(s.terminal(), Some(&Terminal::DeadlineExceeded));
        s.skip(2);
        assert!(s.is_complete());
        assert_eq!(s.finish().matches_found, 0);
    }

    #[test]
    fn max_matches_clamps_within_the_boundary_chunk() {
        let mut s = CommitState::new(2, &ResultMode::Collect, None, Some(3), false);
        s.submit(chunk(0, vec![m(0), m(1)], 1));
        assert!(s.terminal().is_none(), "2 of 3 committed");
        s.submit(chunk(1, vec![m(2), m(3), m(4)], 1));
        assert_eq!(s.terminal(), Some(&Terminal::MaxMatchesReached));
        let out = s.finish();
        assert_eq!(out.matches_found, 3, "count clamps at the cap");
        assert_eq!(out.matches, vec![m(0), m(1), m(2)], "prefix of the stream");
    }

    #[test]
    fn topk_satisfied_is_completed_not_partial() {
        let mut s = CommitState::new(3, &ResultMode::TopK(2), None, None, false);
        s.submit(chunk(0, vec![m(0), m(1), m(2)], 1));
        assert_eq!(s.terminal(), Some(&Terminal::Completed));
        s.skip(2); // the drained remainder
        let out = s.finish();
        assert_eq!(out.terminal, Terminal::Completed);
        assert_eq!(out.matches_found, 2);
        assert_eq!(out.matches, vec![m(0), m(1)]);
        assert!(!out.exhaustive, "LIMIT-style completion is not exhaustive");
    }

    #[test]
    fn sample_is_a_function_of_stream_and_seed() {
        let stream: Vec<Vec<VertexId>> = (0..100).map(m).collect();
        let run = |chunks: &[&[Vec<VertexId>]]| {
            let mode = ResultMode::Sample { n: 5, seed: 42 };
            let mut s = CommitState::new(chunks.len(), &mode, None, None, false);
            for (i, c) in chunks.iter().enumerate() {
                s.submit(chunk(i, c.to_vec(), 1));
            }
            let out = s.finish();
            assert_eq!(out.terminal, Terminal::Completed);
            assert_eq!(out.matches_found, 100, "sampling still counts exactly");
            out.matches
        };
        // Same stream, different chunking ⇒ same reservoir.
        let a = run(&[&stream[..30], &stream[30..]]);
        let b = run(&[&stream[..70], &stream[70..90], &stream[90..]]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn cancellation_discards_pending_and_late_chunks() {
        let mut s = CommitState::new(3, &ResultMode::CountOnly, None, None, false);
        s.submit(chunk(2, vec![m(0)], 1)); // pending, out of order
        assert!(s.set_terminal(Terminal::Cancelled), "first transition wins");
        assert!(!s.set_terminal(Terminal::Completed));
        s.submit(chunk(0, vec![m(1)], 1)); // in-flight arrival after cancel
        s.skip(1); // drained from the queue
        assert!(s.is_complete());
        let out = s.finish();
        assert_eq!(out.terminal, Terminal::Cancelled);
        assert_eq!(out.matches_found, 0, "no silent partial counts");
        assert_eq!((out.committed, out.discarded), (0, 3));
    }

    #[test]
    fn lowest_indexed_failure_decides_the_error() {
        // Failures arrive out of order; the surfaced error must be chunk
        // 1's, not chunk 2's — in-order evaluation, worker timing moot.
        let mut s = CommitState::new(4, &ResultMode::Collect, None, None, false);
        s.submit_failed(2, outage(20, 2));
        s.submit_failed(1, outage(10, 1));
        assert!(s.terminal().is_none(), "chunk 0 still outstanding");
        s.submit(chunk(0, vec![m(0)], 1));
        assert_eq!(s.terminal(), Some(&Terminal::Failed(outage(10, 1))));
        s.skip(1); // the drained remainder
        assert!(s.is_complete());
        let out = s.finish();
        assert_eq!(out.terminal, Terminal::Failed(outage(10, 1)));
        assert_eq!(out.matches_found, 1, "work before the failure stays");
        assert_eq!((out.committed, out.discarded), (1, 3));
        assert!(
            out.dark_shards.is_empty(),
            "no degradation without the flag"
        );
    }

    #[test]
    fn degradation_skips_dark_chunks_and_keeps_committing() {
        let mut s = CommitState::new(4, &ResultMode::Collect, None, None, true);
        s.submit(chunk(0, vec![m(0)], 1));
        s.submit_failed(1, outage(10, 3));
        s.submit(chunk(2, vec![m(2)], 1));
        s.submit_failed(3, outage(11, 1));
        assert!(s.is_complete());
        let out = s.finish();
        assert_eq!(out.terminal, Terminal::DegradedPartial);
        assert_eq!(out.matches, vec![m(0), m(2)], "reachable chunks committed");
        assert_eq!(out.vticks, 2, "dark chunks cost no virtual time");
        assert_eq!((out.committed, out.discarded), (2, 2));
        assert_eq!(out.dark_shards, vec![1, 3], "sorted, deduplicated");
        assert!(!out.exhaustive);
    }

    #[test]
    fn non_degradable_errors_fail_even_under_degradation() {
        let mut s = CommitState::new(2, &ResultMode::CountOnly, None, None, true);
        let rot = ServiceError::CorruptValue {
            vertex: 5,
            detail: "missing from the resident store".into(),
        };
        s.submit_failed(0, rot.clone());
        assert_eq!(s.terminal(), Some(&Terminal::Failed(rot)));
        s.skip(1);
        assert!(s.is_complete());
    }

    #[test]
    fn deadline_takes_precedence_over_a_late_failure() {
        // The failing chunk sits past the deadline boundary: the query is
        // DeadlineExceeded (budget semantics are fault-independent).
        let mut s = CommitState::new(2, &ResultMode::CountOnly, Some(1), None, false);
        s.submit(chunk(0, vec![m(0)], 1));
        s.submit_failed(1, outage(9, 0));
        assert!(s.is_complete());
        assert_eq!(s.finish().terminal, Terminal::DeadlineExceeded);
    }

    #[test]
    fn all_chunks_dark_is_still_degraded_partial() {
        let mut s = CommitState::new(2, &ResultMode::CountOnly, None, None, true);
        s.submit_failed(0, outage(0, 0));
        s.submit_failed(1, outage(1, 0));
        assert!(s.is_complete());
        let out = s.finish();
        assert_eq!(out.terminal, Terminal::DegradedPartial);
        assert_eq!(out.matches_found, 0);
        assert_eq!(out.dark_shards, vec![0]);
    }
}
