//! Admission control: bounded backlog with deterministic load-shedding.
//!
//! A serving pool without admission control converts overload into
//! unbounded queue growth and unbounded tail latency. The service
//! instead evaluates every submission against the backlog *at the
//! admission point*, under the same lock that would enqueue it, and
//! sheds with a structured [`crate::Terminal::Rejected`] — the caller
//! learns immediately, nothing of the query executes, and no partially
//! admitted state needs unwinding.
//!
//! The verdict is a pure function of `(caps, backlog snapshot, incoming
//! query shape)`. Given the same submission sequence against the same
//! service state, the same queries are shed — load-shedding is
//! replayable, which is what lets the chaos suite assert on it.
//!
//! Three independent gates, all optional (a zero cap disables a gate):
//!
//! 1. **Inflight queries** — non-terminal admitted queries, capped by
//!    [`crate::ServiceConfig::max_inflight_queries`].
//! 2. **Queued chunks** — un-granted chunks across the fair queue plus
//!    the incoming query's own chunks, capped by
//!    [`crate::ServiceConfig::max_queued_chunks`]. Charging the incoming
//!    query's full footprint up front keeps one huge query from
//!    squeezing past a nearly-full backlog.
//! 3. **Deadline feasibility** — gated by
//!    [`crate::ServiceConfig::admission_deadline_aware`]: a query whose
//!    virtual-time budget is below the backlog's minimum drain cost —
//!    one vtick per task across the queued chunks — is declared urgent
//!    by its tight deadline, and a backlogged service sheds it up front
//!    instead of serving it late. (Per-query budgets are never charged
//!    for queue time; this gate is a service-level urgency heuristic,
//!    not a change to deadline semantics.)
//!
//! The `retry_after_vticks` carried by the rejection is a lower bound on
//! the service virtual time that must elapse before the backlog that
//! caused the shed can have drained: one vtick per queued chunk (every
//! committed chunk books at least one tick). It is advisory — a hint
//! for caller-side backoff, not a reservation.

/// The admission gates, snapshot from [`crate::ServiceConfig`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct AdmissionCaps {
    /// Max queries admitted and not yet terminal (0 = unbounded).
    pub max_inflight_queries: usize,
    /// Max un-granted chunks including the incoming query's
    /// (0 = unbounded).
    pub max_queued_chunks: usize,
    /// Shed queries whose deadline the backlog makes infeasible.
    pub deadline_aware: bool,
    /// Tasks per chunk — the per-chunk floor of the backlog's drain
    /// cost (each committed task books at least one vtick).
    pub chunk_tasks: usize,
}

/// The service's backlog at the admission point.
#[derive(Clone, Copy, Debug)]
pub(crate) struct LoadSnapshot {
    /// Admitted, non-terminal queries.
    pub inflight_queries: usize,
    /// Un-granted chunks across the fair queue.
    pub queued_chunks: usize,
}

/// What admission decided for one submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AdmissionVerdict {
    /// Enqueue the query.
    Admit,
    /// Shed it: nothing executes, the caller gets
    /// [`crate::Terminal::Rejected`] with this drain-time lower bound.
    Shed {
        /// Lower bound on the service vticks needed to drain the
        /// backlog that caused the shed (≥ 1, so "retry immediately"
        /// is never advised).
        retry_after_vticks: u64,
    },
}

/// Evaluates one submission against the backlog. Pure — callers pass a
/// consistent snapshot taken under the service lock.
pub(crate) fn evaluate(
    caps: AdmissionCaps,
    load: LoadSnapshot,
    incoming_chunks: usize,
    deadline_vticks: Option<u64>,
) -> AdmissionVerdict {
    let shed = AdmissionVerdict::Shed {
        retry_after_vticks: (load.queued_chunks as u64).max(1),
    };
    if caps.max_inflight_queries > 0 && load.inflight_queries >= caps.max_inflight_queries {
        return shed;
    }
    if caps.max_queued_chunks > 0 && load.queued_chunks + incoming_chunks > caps.max_queued_chunks {
        return shed;
    }
    if caps.deadline_aware {
        if let Some(d) = deadline_vticks {
            if d < (load.queued_chunks * caps.chunk_tasks) as u64 {
                return shed;
            }
        }
    }
    AdmissionVerdict::Admit
}

#[cfg(test)]
mod tests {
    use super::*;

    const OPEN: AdmissionCaps = AdmissionCaps {
        max_inflight_queries: 0,
        max_queued_chunks: 0,
        deadline_aware: false,
        chunk_tasks: 1,
    };

    fn load(inflight: usize, queued: usize) -> LoadSnapshot {
        LoadSnapshot {
            inflight_queries: inflight,
            queued_chunks: queued,
        }
    }

    #[test]
    fn zero_caps_admit_everything() {
        assert_eq!(
            evaluate(OPEN, load(10_000, 1_000_000), 5_000, Some(0)),
            AdmissionVerdict::Admit
        );
    }

    #[test]
    fn inflight_cap_sheds_at_the_boundary() {
        let caps = AdmissionCaps {
            max_inflight_queries: 2,
            ..OPEN
        };
        assert_eq!(evaluate(caps, load(1, 0), 4, None), AdmissionVerdict::Admit);
        assert_eq!(
            evaluate(caps, load(2, 7), 4, None),
            AdmissionVerdict::Shed {
                retry_after_vticks: 7
            }
        );
    }

    #[test]
    fn chunk_cap_charges_the_incoming_footprint() {
        let caps = AdmissionCaps {
            max_queued_chunks: 10,
            ..OPEN
        };
        assert_eq!(evaluate(caps, load(1, 6), 4, None), AdmissionVerdict::Admit);
        assert_eq!(
            evaluate(caps, load(1, 6), 5, None),
            AdmissionVerdict::Shed {
                retry_after_vticks: 6
            },
            "6 queued + 5 incoming > 10"
        );
    }

    #[test]
    fn retry_hint_is_never_zero() {
        let caps = AdmissionCaps {
            max_inflight_queries: 1,
            ..OPEN
        };
        assert_eq!(
            evaluate(caps, load(1, 0), 1, None),
            AdmissionVerdict::Shed {
                retry_after_vticks: 1
            }
        );
    }

    #[test]
    fn deadline_awareness_is_opt_in() {
        let aware = AdmissionCaps {
            deadline_aware: true,
            ..OPEN
        };
        // Budget 3 < 8 queued chunks' guaranteed drain cost: dead on
        // arrival under the flag, admitted without it.
        assert_eq!(
            evaluate(aware, load(1, 8), 2, Some(3)),
            AdmissionVerdict::Shed {
                retry_after_vticks: 8
            }
        );
        assert_eq!(
            evaluate(OPEN, load(1, 8), 2, Some(3)),
            AdmissionVerdict::Admit
        );
        // Budget-free queries and feasible budgets pass.
        assert_eq!(
            evaluate(aware, load(1, 8), 2, None),
            AdmissionVerdict::Admit
        );
        assert_eq!(
            evaluate(aware, load(1, 8), 2, Some(8)),
            AdmissionVerdict::Admit
        );
    }

    #[test]
    fn deadline_floor_scales_with_chunk_tasks() {
        let aware = AdmissionCaps {
            deadline_aware: true,
            chunk_tasks: 64,
            ..OPEN
        };
        // 8 queued chunks × 64 tasks = 512 vticks of guaranteed work.
        assert_eq!(
            evaluate(aware, load(1, 8), 2, Some(511)),
            AdmissionVerdict::Shed {
                retry_after_vticks: 8
            }
        );
        assert_eq!(
            evaluate(aware, load(1, 8), 2, Some(512)),
            AdmissionVerdict::Admit
        );
    }
}
