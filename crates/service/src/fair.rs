//! Weighted round-robin admission queue over per-query chunk queues.
//!
//! Cross-query fairness is the serving layer's scheduling contract: a
//! clique-6 enumeration must not starve a triangle count. The unit of
//! granting is one *chunk* (a bounded run of consecutive task indices,
//! [`crate::ServiceConfig::chunk_tasks`] tasks), so a worker books at
//! most one chunk of a query before the rotation may hand the next
//! grant to a different query — a newly admitted query waits at most
//! one chunk per worker, which is the batch-boundary fairness fix the
//! `FRONTIER_TASK_BATCH` worker loop of the batch cluster never needed
//! (it is single-query) but a multi-tenant pool does.
//!
//! *Within* a query, chunk placement follows the cluster's
//! [`SchedulerKind`] semantics layered per query: `Static` pins chunks
//! to lanes round-robin with no migration; `WorkStealing` lets an idle
//! lane steal from its query's longest lane. Grant order is
//! intentionally free (it depends on worker timing); result determinism
//! comes from the in-order commit pipeline, not from grant order.

use crate::query::QueryId;
use benu_cluster::SchedulerKind;
use parking_lot::Mutex;
use std::collections::VecDeque;

struct Entry<T> {
    id: QueryId,
    payload: T,
    weight: u32,
    /// Chunks left in this round-robin turn; refilled from `weight`.
    credit: u32,
    kind: SchedulerKind,
    lanes: Vec<VecDeque<usize>>,
    remaining: usize,
}

impl<T> Entry<T> {
    /// Takes one chunk for `lane` under the entry's placement policy.
    fn take(&mut self, lane: usize) -> Option<usize> {
        if let Some(chunk) = self.lanes[lane].pop_front() {
            return Some(chunk);
        }
        if self.kind == SchedulerKind::WorkStealing {
            let victim = (0..self.lanes.len()).max_by_key(|&l| self.lanes[l].len())?;
            return self.lanes[victim].pop_back();
        }
        None
    }
}

struct State<T> {
    entries: Vec<Entry<T>>,
    /// Position of the entry whose round-robin turn it is. May sit one
    /// past the last entry, meaning "the next admitted query has the
    /// turn" — that is what guarantees a late admission is served within
    /// one chunk of the running query instead of waiting a full cycle.
    cursor: usize,
}

/// The fair cross-query queue. `T` is the per-query payload handed back
/// with each grant (the service uses `Arc<QueryRun>`).
pub(crate) struct FairQueue<T: Clone> {
    state: Mutex<State<T>>,
}

impl<T: Clone> FairQueue<T> {
    pub(crate) fn new() -> Self {
        FairQueue {
            state: Mutex::new(State {
                entries: Vec::new(),
                cursor: 0,
            }),
        }
    }

    /// Admits a query with `chunks` chunks distributed round-robin over
    /// `lanes` lanes (the cluster's even initial shuffle).
    pub(crate) fn admit(
        &self,
        id: QueryId,
        payload: T,
        weight: u32,
        kind: SchedulerKind,
        chunks: usize,
        lanes: usize,
    ) {
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); lanes];
        for chunk in 0..chunks {
            queues[chunk % lanes].push_back(chunk);
        }
        let weight = weight.max(1);
        self.state.lock().entries.push(Entry {
            id,
            payload,
            weight,
            credit: weight,
            kind,
            lanes: queues,
            remaining: chunks,
        });
    }

    /// Grants `lane` one chunk: the cursor entry first, then — if it has
    /// nothing this lane can take — the next entries in admission order.
    /// Serving the cursor entry consumes one credit; an exhausted credit
    /// (or an emptied entry) rotates the cursor.
    pub(crate) fn next(&self, lane: usize) -> Option<(T, usize)> {
        let state = &mut *self.state.lock();
        let len = state.entries.len();
        if len == 0 {
            return None;
        }
        // A past-the-end cursor wraps to 0 only now that nothing was
        // admitted behind it.
        let cur = state.cursor % len;
        for offset in 0..len {
            let idx = (cur + offset) % len;
            let Some(chunk) = state.entries[idx].take(lane) else {
                continue;
            };
            let entry = &mut state.entries[idx];
            let payload = entry.payload.clone();
            entry.remaining -= 1;
            entry.credit -= 1;
            let exhausted_turn = entry.credit == 0;
            if exhausted_turn {
                entry.credit = entry.weight;
            }
            state.cursor = if entry.remaining == 0 {
                state.entries.remove(idx);
                // A removed cursor entry passes the turn to its
                // successor, which just shifted into `cur`.
                if idx < cur {
                    cur - 1
                } else {
                    cur
                }
            } else if idx == cur && exhausted_turn {
                cur + 1
            } else {
                cur
            };
            return Some((payload, chunk));
        }
        None
    }

    /// Removes a query's un-granted chunks (cancellation, budget
    /// termination), returning how many were released.
    pub(crate) fn drain(&self, id: QueryId) -> usize {
        let state = &mut *self.state.lock();
        let Some(idx) = state.entries.iter().position(|e| e.id == id) else {
            return 0;
        };
        let released = state.entries[idx].remaining;
        state.entries.remove(idx);
        if idx < state.cursor {
            state.cursor -= 1;
        }
        released
    }

    /// Total un-granted chunks across every admitted query.
    pub(crate) fn depth(&self) -> usize {
        self.state.lock().entries.iter().map(|e| e.remaining).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WS: SchedulerKind = SchedulerKind::WorkStealing;

    fn ids(q: &FairQueue<QueryId>, lane: usize, n: usize) -> Vec<QueryId> {
        (0..n)
            .map(|_| q.next(lane).expect("chunk available").0)
            .collect()
    }

    #[test]
    fn round_robin_alternates_queries() {
        let q = FairQueue::new();
        q.admit(0, 0, 1, WS, 4, 1);
        q.admit(1, 1, 1, WS, 4, 1);
        assert_eq!(ids(&q, 0, 8), vec![0, 1, 0, 1, 0, 1, 0, 1]);
        assert!(q.next(0).is_none());
    }

    #[test]
    fn late_admission_is_served_within_one_chunk() {
        // The batch-boundary fairness regression: after one chunk of the
        // running query, a newly admitted query gets the next grant.
        let q = FairQueue::new();
        q.admit(0, 0, 1, WS, 10, 1);
        assert_eq!(q.next(0).unwrap().0, 0);
        q.admit(1, 1, 1, WS, 1, 1);
        assert_eq!(q.next(0).unwrap().0, 1, "B must preempt A's next grant");
        assert_eq!(q.next(0).unwrap().0, 0);
    }

    #[test]
    fn weights_scale_grants_per_round() {
        let q = FairQueue::new();
        q.admit(0, 0, 2, WS, 6, 1);
        q.admit(1, 1, 1, WS, 3, 1);
        assert_eq!(ids(&q, 0, 9), vec![0, 0, 1, 0, 0, 1, 0, 0, 1]);
    }

    #[test]
    fn static_lanes_stay_pinned_and_stealing_migrates() {
        let pinned = FairQueue::new();
        pinned.admit(0, 0, 1, SchedulerKind::Static, 4, 2);
        // Chunks 0,2 pin to lane 0; 1,3 to lane 1. Lane 0 cannot take
        // lane 1's chunks.
        assert_eq!(pinned.next(0).unwrap().1, 0);
        assert_eq!(pinned.next(0).unwrap().1, 2);
        assert!(pinned.next(0).is_none());
        assert_eq!(pinned.next(1).unwrap().1, 1);

        let stealing = FairQueue::new();
        stealing.admit(0, 0, 1, WS, 4, 2);
        assert_eq!(
            ids(&stealing, 0, 4),
            vec![0, 0, 0, 0],
            "lane 0 steals the rest"
        );
    }

    #[test]
    fn drain_releases_remaining_chunks() {
        let q = FairQueue::new();
        q.admit(0, 0, 1, WS, 5, 1);
        q.admit(1, 1, 1, WS, 5, 1);
        assert_eq!(q.depth(), 10);
        q.next(0);
        assert_eq!(q.drain(0), 4);
        assert_eq!(q.depth(), 5);
        assert_eq!(q.drain(0), 0, "draining twice is a no-op");
        assert_eq!(ids(&q, 0, 5), vec![1, 1, 1, 1, 1]);
    }
}
