//! Weighted round-robin admission queue over per-query chunk queues.
//!
//! Cross-query fairness is the serving layer's scheduling contract: a
//! clique-6 enumeration must not starve a triangle count. The unit of
//! granting is one *chunk* (a bounded run of consecutive task indices,
//! [`crate::ServiceConfig::chunk_tasks`] tasks), so a worker books at
//! most one chunk of a query before the rotation may hand the next
//! grant to a different query — a newly admitted query waits at most
//! one chunk per worker, which is the batch-boundary fairness fix the
//! `FRONTIER_TASK_BATCH` worker loop of the batch cluster never needed
//! (it is single-query) but a multi-tenant pool does.
//!
//! *Within* a query, chunk placement follows the cluster's
//! [`SchedulerKind`] semantics layered per query: `Static` pins chunks
//! to lanes round-robin with no migration; `WorkStealing` lets an idle
//! lane steal from its query's longest lane. Grant order is
//! intentionally free (it depends on worker timing); result determinism
//! comes from the in-order commit pipeline, not from grant order.

use crate::query::QueryId;
use benu_cluster::SchedulerKind;
use parking_lot::Mutex;
use std::collections::VecDeque;

struct Entry<T> {
    id: QueryId,
    payload: T,
    weight: u32,
    /// Chunks left in this round-robin turn; refilled from `weight`.
    credit: u32,
    kind: SchedulerKind,
    lanes: Vec<VecDeque<usize>>,
    remaining: usize,
}

impl<T> Entry<T> {
    /// Takes one chunk for `lane` under the entry's placement policy.
    fn take(&mut self, lane: usize) -> Option<usize> {
        if let Some(chunk) = self.lanes[lane].pop_front() {
            return Some(chunk);
        }
        if self.kind == SchedulerKind::WorkStealing {
            let victim = (0..self.lanes.len()).max_by_key(|&l| self.lanes[l].len())?;
            return self.lanes[victim].pop_back();
        }
        None
    }
}

struct State<T> {
    entries: Vec<Entry<T>>,
    /// Position of the entry whose round-robin turn it is. May sit one
    /// past the last entry, meaning "the next admitted query has the
    /// turn" — that is what guarantees a late admission is served within
    /// one chunk of the running query instead of waiting a full cycle.
    cursor: usize,
    /// Lanes whose worker crashed. Dead lanes receive no placements and
    /// grant no chunks; their queued work migrates to survivors.
    dead: Vec<bool>,
}

impl<T> State<T> {
    fn alive_lanes(&self) -> Vec<usize> {
        let alive: Vec<usize> = (0..self.dead.len()).filter(|&l| !self.dead[l]).collect();
        debug_assert!(
            !alive.is_empty(),
            "admission must stop before the pool dies"
        );
        alive
    }
}

/// The fair cross-query queue. `T` is the per-query payload handed back
/// with each grant (the service uses `Arc<QueryRun>`).
pub(crate) struct FairQueue<T: Clone> {
    state: Mutex<State<T>>,
}

impl<T: Clone> FairQueue<T> {
    pub(crate) fn new(lanes: usize) -> Self {
        FairQueue {
            state: Mutex::new(State {
                entries: Vec::new(),
                cursor: 0,
                dead: vec![false; lanes],
            }),
        }
    }

    /// Admits a query with `chunks` chunks distributed round-robin over
    /// the surviving lanes (the cluster's even initial shuffle, skipping
    /// crashed lanes).
    pub(crate) fn admit(
        &self,
        id: QueryId,
        payload: T,
        weight: u32,
        kind: SchedulerKind,
        chunks: usize,
    ) {
        let state = &mut *self.state.lock();
        let alive = state.alive_lanes();
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); state.dead.len()];
        for chunk in 0..chunks {
            queues[alive[chunk % alive.len()]].push_back(chunk);
        }
        let weight = weight.max(1);
        state.entries.push(Entry {
            id,
            payload,
            weight,
            credit: weight,
            kind,
            lanes: queues,
            remaining: chunks,
        });
    }

    /// Grants `lane` one chunk: the cursor entry first, then — if it has
    /// nothing this lane can take — the next entries in admission order.
    /// Serving the cursor entry consumes one credit; an exhausted credit
    /// (or an emptied entry) rotates the cursor.
    pub(crate) fn next(&self, lane: usize) -> Option<(T, usize)> {
        let state = &mut *self.state.lock();
        if state.dead[lane] {
            return None;
        }
        let len = state.entries.len();
        if len == 0 {
            return None;
        }
        // A past-the-end cursor wraps to 0 only now that nothing was
        // admitted behind it.
        let cur = state.cursor % len;
        for offset in 0..len {
            let idx = (cur + offset) % len;
            let Some(chunk) = state.entries[idx].take(lane) else {
                continue;
            };
            let entry = &mut state.entries[idx];
            let payload = entry.payload.clone();
            entry.remaining -= 1;
            entry.credit -= 1;
            let exhausted_turn = entry.credit == 0;
            if exhausted_turn {
                entry.credit = entry.weight;
            }
            state.cursor = if entry.remaining == 0 {
                state.entries.remove(idx);
                // A removed cursor entry passes the turn to its
                // successor, which just shifted into `cur`.
                if idx < cur {
                    cur - 1
                } else {
                    cur
                }
            } else if idx == cur && exhausted_turn {
                cur + 1
            } else {
                cur
            };
            return Some((payload, chunk));
        }
        None
    }

    /// Removes a query's un-granted chunks (cancellation, budget
    /// termination), returning how many were released.
    pub(crate) fn drain(&self, id: QueryId) -> usize {
        let state = &mut *self.state.lock();
        let Some(idx) = state.entries.iter().position(|e| e.id == id) else {
            return 0;
        };
        let released = state.entries[idx].remaining;
        state.entries.remove(idx);
        if idx < state.cursor {
            state.cursor -= 1;
        }
        released
    }

    /// Total un-granted chunks across every admitted query.
    pub(crate) fn depth(&self) -> usize {
        self.state.lock().entries.iter().map(|e| e.remaining).sum()
    }

    /// Marks `lane` dead and migrates its queued chunks onto survivors —
    /// crash recovery overrides `Static` pinning by design (a pinned
    /// chunk on a dead lane would otherwise never execute). Returns how
    /// many queued chunks migrated. A dead pool (no survivors) migrates
    /// nothing; the caller fails the affected queries instead.
    pub(crate) fn fail_lane(&self, lane: usize) -> usize {
        let state = &mut *self.state.lock();
        if state.dead[lane] {
            return 0;
        }
        state.dead[lane] = true;
        let alive: Vec<usize> = (0..state.dead.len()).filter(|&l| !state.dead[l]).collect();
        if alive.is_empty() {
            return 0;
        }
        let mut moved = 0;
        for entry in &mut state.entries {
            let orphans: Vec<usize> = entry.lanes[lane].drain(..).collect();
            for chunk in orphans {
                entry.lanes[alive[moved % alive.len()]].push_back(chunk);
                moved += 1;
            }
        }
        moved
    }

    /// Puts back a chunk that was granted but never executed (its worker
    /// crashed holding it). The chunk lands at the *front* of a surviving
    /// lane of its query — re-execution order does not matter for results
    /// (the commit pipeline is in-order), only that the chunk runs. If
    /// the query's entry was already retired from the rotation (its last
    /// chunk had been granted), a fresh single-chunk entry is admitted.
    pub(crate) fn requeue(
        &self,
        id: QueryId,
        payload: T,
        weight: u32,
        kind: SchedulerKind,
        chunk: usize,
    ) {
        let state = &mut *self.state.lock();
        let alive = state.alive_lanes();
        // Shortest surviving queue keeps the migrated load even.
        let target = *alive
            .iter()
            .min_by_key(|&&l| {
                state
                    .entries
                    .iter()
                    .map(|e| e.lanes[l].len())
                    .sum::<usize>()
            })
            .expect("at least one survivor");
        if let Some(entry) = state.entries.iter_mut().find(|e| e.id == id) {
            entry.lanes[target].push_front(chunk);
            entry.remaining += 1;
            return;
        }
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); state.dead.len()];
        queues[target].push_back(chunk);
        let weight = weight.max(1);
        state.entries.push(Entry {
            id,
            payload,
            weight,
            credit: weight,
            kind,
            lanes: queues,
            remaining: 1,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WS: SchedulerKind = SchedulerKind::WorkStealing;

    fn ids(q: &FairQueue<QueryId>, lane: usize, n: usize) -> Vec<QueryId> {
        (0..n)
            .map(|_| q.next(lane).expect("chunk available").0)
            .collect()
    }

    #[test]
    fn round_robin_alternates_queries() {
        let q = FairQueue::new(1);
        q.admit(0, 0, 1, WS, 4);
        q.admit(1, 1, 1, WS, 4);
        assert_eq!(ids(&q, 0, 8), vec![0, 1, 0, 1, 0, 1, 0, 1]);
        assert!(q.next(0).is_none());
    }

    #[test]
    fn late_admission_is_served_within_one_chunk() {
        // The batch-boundary fairness regression: after one chunk of the
        // running query, a newly admitted query gets the next grant.
        let q = FairQueue::new(1);
        q.admit(0, 0, 1, WS, 10);
        assert_eq!(q.next(0).unwrap().0, 0);
        q.admit(1, 1, 1, WS, 1);
        assert_eq!(q.next(0).unwrap().0, 1, "B must preempt A's next grant");
        assert_eq!(q.next(0).unwrap().0, 0);
    }

    #[test]
    fn weights_scale_grants_per_round() {
        let q = FairQueue::new(1);
        q.admit(0, 0, 2, WS, 6);
        q.admit(1, 1, 1, WS, 3);
        assert_eq!(ids(&q, 0, 9), vec![0, 0, 1, 0, 0, 1, 0, 0, 1]);
    }

    #[test]
    fn static_lanes_stay_pinned_and_stealing_migrates() {
        let pinned = FairQueue::new(2);
        pinned.admit(0, 0, 1, SchedulerKind::Static, 4);
        // Chunks 0,2 pin to lane 0; 1,3 to lane 1. Lane 0 cannot take
        // lane 1's chunks.
        assert_eq!(pinned.next(0).unwrap().1, 0);
        assert_eq!(pinned.next(0).unwrap().1, 2);
        assert!(pinned.next(0).is_none());
        assert_eq!(pinned.next(1).unwrap().1, 1);

        let stealing = FairQueue::new(2);
        stealing.admit(0, 0, 1, WS, 4);
        assert_eq!(
            ids(&stealing, 0, 4),
            vec![0, 0, 0, 0],
            "lane 0 steals the rest"
        );
    }

    #[test]
    fn drain_releases_remaining_chunks() {
        let q = FairQueue::new(1);
        q.admit(0, 0, 1, WS, 5);
        q.admit(1, 1, 1, WS, 5);
        assert_eq!(q.depth(), 10);
        q.next(0);
        assert_eq!(q.drain(0), 4);
        assert_eq!(q.depth(), 5);
        assert_eq!(q.drain(0), 0, "draining twice is a no-op");
        assert_eq!(ids(&q, 0, 5), vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn failed_lane_migrates_even_pinned_chunks() {
        let q = FairQueue::new(2);
        q.admit(0, 0, 1, SchedulerKind::Static, 4);
        assert_eq!(q.next(1).unwrap().1, 1);
        // Lane 1 dies holding nothing; its queued chunk 3 must migrate
        // to lane 0 despite Static pinning.
        assert_eq!(q.fail_lane(1), 1);
        assert!(q.next(1).is_none(), "a dead lane grants nothing");
        let granted: Vec<usize> = (0..3).map(|_| q.next(0).unwrap().1).collect();
        let mut sorted = granted.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 2, 3]);
        assert!(q.next(0).is_none());
        assert_eq!(q.fail_lane(1), 0, "failing twice is a no-op");
    }

    #[test]
    fn dead_lanes_receive_no_new_placements() {
        let q = FairQueue::new(2);
        q.fail_lane(0);
        q.admit(0, 0, 1, SchedulerKind::Static, 3);
        assert!(q.next(0).is_none());
        assert_eq!(ids(&q, 1, 3), vec![0, 0, 0], "all chunks land on lane 1");
    }

    #[test]
    fn requeue_revives_a_granted_chunk() {
        let q = FairQueue::new(2);
        q.admit(7, 7, 1, WS, 2);
        let (_, c0) = q.next(0).unwrap();
        let (_, c1) = q.next(1).unwrap();
        assert!(q.next(0).is_none(), "entry retired: all chunks granted");
        // Lane 1 crashes mid-chunk: its chunk comes back even though the
        // entry left the rotation.
        q.fail_lane(1);
        q.requeue(7, 7, 1, WS, c1);
        assert_eq!(q.depth(), 1);
        assert_eq!(q.next(0).unwrap(), (7, c1));
        assert_ne!(c0, c1);

        // And with the entry still live, the chunk rejoins it rather
        // than duplicating the query.
        let q = FairQueue::new(1);
        q.admit(3, 3, 1, WS, 3);
        let (_, first) = q.next(0).unwrap();
        q.requeue(3, 3, 1, WS, first);
        assert_eq!(q.depth(), 3);
        assert_eq!(
            q.next(0).unwrap().1,
            first,
            "requeued chunk sits at the front"
        );
    }
}
