//! The serving-layer error taxonomy.
//!
//! Every failure the request path can hit maps onto one structured
//! [`ServiceError`]; the variants mirror the transport/worker taxonomy
//! of the batch cluster (`benu_cluster::WorkerError`) but are scoped to
//! *one query*: a query that hits any of these settles with
//! [`crate::Terminal::Failed`] (or, for an unrecoverable shard outage
//! under graceful degradation, [`crate::Terminal::DegradedPartial`])
//! while every other in-flight query keeps running. Nothing on the
//! request path panics.

use benu_graph::VertexId;

/// Why one query failed. Carried inside [`crate::Terminal::Failed`];
/// never aborts the process or any sibling query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// A store request kept faulting (transient errors / timeouts) for
    /// longer than the retry policy allows. Retryable faults were
    /// retried with virtual backoff; this surfaces only once the
    /// attempt budget is spent.
    RetryExhausted {
        /// The vertex whose fetch (or whose shard batch) failed.
        vertex: VertexId,
        /// The shard that kept refusing.
        shard: usize,
        /// Attempts spent before giving up.
        attempts: u32,
    },
    /// Every replica of the vertex's placement group is persistently
    /// dark (shard outage) — retrying cannot help, so the request
    /// failed fast without spending retry budget. With
    /// [`crate::ServiceConfig::graceful_degradation`] enabled this is
    /// the one error class a query can absorb: affected chunks go dark
    /// and the query settles as [`crate::Terminal::DegradedPartial`].
    StoreUnavailable {
        /// The vertex whose placement group is dark.
        vertex: VertexId,
        /// The dark primary shard.
        shard: usize,
    },
    /// The stored value is unusable: its bytes failed to decode, or the
    /// vertex is missing from the resident store entirely while the
    /// task list still names it. Permanent — every replica mirrors the
    /// same value, so neither retry nor failover can help.
    CorruptValue {
        /// The vertex whose value is rotten or gone.
        vertex: VertexId,
        /// What was wrong with it (stable, human-readable).
        detail: String,
    },
    /// The serving worker executing this query's chunk crashed and no
    /// survivor could take the work over (the whole pool is dead).
    /// While survivors remain, a crash never surfaces: the uncommitted
    /// chunk is requeued and re-executed elsewhere.
    WorkerLost {
        /// The lane that died.
        lane: usize,
        /// The chunk it was holding.
        chunk: usize,
    },
}

impl ServiceError {
    /// Stable lower-case name (reports, logs, counters).
    pub fn name(&self) -> &'static str {
        match self {
            ServiceError::RetryExhausted { .. } => "retry_exhausted",
            ServiceError::StoreUnavailable { .. } => "store_unavailable",
            ServiceError::CorruptValue { .. } => "corrupt_value",
            ServiceError::WorkerLost { .. } => "worker_lost",
        }
    }

    /// True for the one error class graceful degradation can absorb:
    /// a persistent shard outage. Availability exhaustion and data rot
    /// always fail the query — a degraded result must still be the
    /// deterministic truth about the shards that *were* reachable.
    pub(crate) fn is_degradable(&self) -> bool {
        matches!(self, ServiceError::StoreUnavailable { .. })
    }

    /// The dark shard behind a degradable error.
    pub(crate) fn dark_shard(&self) -> Option<usize> {
        match self {
            ServiceError::StoreUnavailable { shard, .. } => Some(*shard),
            _ => None,
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::RetryExhausted {
                vertex,
                shard,
                attempts,
            } => write!(
                f,
                "shard {shard} unavailable for vertex {vertex} after {attempts} attempts"
            ),
            ServiceError::StoreUnavailable { vertex, shard } => write!(
                f,
                "every replica of vertex {vertex} (primary shard {shard}) is down"
            ),
            ServiceError::CorruptValue { vertex, detail } => {
                write!(f, "unusable value for vertex {vertex}: {detail}")
            }
            ServiceError::WorkerLost { lane, chunk } => write!(
                f,
                "serving worker {lane} crashed on chunk {chunk} with no survivors"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_display_are_stable() {
        let errs = [
            ServiceError::RetryExhausted {
                vertex: 3,
                shard: 1,
                attempts: 8,
            },
            ServiceError::StoreUnavailable {
                vertex: 4,
                shard: 2,
            },
            ServiceError::CorruptValue {
                vertex: 5,
                detail: "missing from the resident store".into(),
            },
            ServiceError::WorkerLost { lane: 0, chunk: 9 },
        ];
        assert_eq!(errs[0].name(), "retry_exhausted");
        assert_eq!(errs[1].name(), "store_unavailable");
        assert_eq!(errs[2].name(), "corrupt_value");
        assert_eq!(errs[3].name(), "worker_lost");
        assert!(errs[0].to_string().contains("after 8 attempts"));
        assert!(errs[2].to_string().contains("vertex 5"));
    }

    #[test]
    fn only_outages_are_degradable() {
        assert!(ServiceError::StoreUnavailable {
            vertex: 0,
            shard: 3
        }
        .is_degradable());
        assert_eq!(
            ServiceError::StoreUnavailable {
                vertex: 0,
                shard: 3
            }
            .dark_shard(),
            Some(3)
        );
        assert!(!ServiceError::WorkerLost { lane: 0, chunk: 0 }.is_degradable());
        assert!(!ServiceError::CorruptValue {
            vertex: 0,
            detail: String::new()
        }
        .is_degradable());
    }
}
