//! The query service: admission, worker pool, commit, reporting.
//!
//! One [`QueryService`] owns a resident data graph — a sharded
//! [`KvStore`] plus one persistent per-worker [`DbCache`] — and serves
//! any number of concurrent pattern queries against it. Admission
//! compiles (or plan-cache-resolves) the pattern, evaluates the
//! [`crate::admission`] gates against the current backlog, generates
//! the split task list exactly as the batch [`benu_cluster::Cluster`]
//! would, and enqueues fixed task-index-range *chunks* into the
//! weighted round-robin [`crate::fair`] queue. Worker threads pull one
//! chunk at a time — the cross-query fairness granularity — execute it
//! with the regular engine (DFS task-at-a-time, or the memory-bounded
//! hybrid as one frontier batch), and hand the outcome to the query's
//! [`CommitState`], which enforces in-order commit and every budget.
//!
//! Determinism contract: a query's terminal status, match count,
//! committed match stream and virtual-time latency are a pure function
//! of `(graph, pattern, options, chunk_tasks)` — independent of worker
//! count, scheduler kind, execution mode, and whatever else is running
//! concurrently. See DESIGN.md §4h.
//!
//! Resilience contract (DESIGN.md §4j): with a
//! [`crate::ServiceConfig::fault_plan`] installed, every failure on the
//! request path maps onto a structured [`ServiceError`] that settles
//! *one* query — never a panic, never a sibling. Fault decisions are
//! evaluated per logical adjacency access *in front of* the warm cache
//! ([`FaultingStore::route_for`] is decision-only), so which chunks of
//! which queries fail is a pure function of the per-query scoped fault
//! seed, independent of cache state and thread timing. A crashed
//! serving worker's uncommitted chunk is requeued onto survivors and
//! re-executed byte-identically; only a fully dead pool surfaces
//! [`ServiceError::WorkerLost`].

use crate::admission::{self, AdmissionCaps, AdmissionVerdict, LoadSnapshot};
use crate::commit::{CommitState, ExecutedChunk};
use crate::config::ServiceConfig;
use crate::error::ServiceError;
use crate::plan_cache::{CachedPlan, PlanCache, PlanCacheStats};
use crate::query::{QueryId, QueryOptions, QueryResult, QueryStatus, Terminal};
use benu_cache::{CacheObs, DbCache};
use benu_cluster::transport::{FetchError, Transport};
use benu_cluster::ExecMode;
use benu_engine::{
    CollectingConsumer, CountingConsumer, DataSource, FrontierEngine, LocalEngine, MatchConsumer,
    MemoryBudget, SearchTask, TaskMetrics,
};
use benu_fault::{FaultKind, FaultingStore, RetryPolicy};
use benu_graph::{AdjSet, Graph, TotalOrder, VertexId};
use benu_kvstore::KvStore;
use benu_obs::{ObsHub, Report, ReportMode};
use benu_pattern::canonical::fingerprint;
use benu_pattern::{Pattern, PatternVertex};
use benu_plan::{ChungLuEstimator, ExecutionPlan, FeedbackEstimator, PlanBuilder, PlanObs};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A condvar-backed edge-triggered signal: `notify` bumps a generation,
/// `wait_past` sleeps until the generation moves (with a timeout
/// backstop so a missed wakeup degrades to a short poll, never a hang).
struct Signal {
    generation: std::sync::Mutex<u64>,
    cv: std::sync::Condvar,
}

impl Signal {
    fn new() -> Self {
        Signal {
            generation: std::sync::Mutex::new(0),
            cv: std::sync::Condvar::new(),
        }
    }

    fn notify(&self) {
        let mut generation = self.generation.lock().expect("signal mutex");
        *generation += 1;
        self.cv.notify_all();
    }

    fn current(&self) -> u64 {
        *self.generation.lock().expect("signal mutex")
    }

    /// Blocks until the generation moves past `seen` or `poll` elapses.
    /// Condvar waits can wake spuriously; the loop re-checks the
    /// generation and keeps waiting out the *remaining* window, so a
    /// spurious wakeup costs nothing instead of silently converting the
    /// wait into a busy retry.
    fn wait_past(&self, seen: u64, poll: Duration) {
        let deadline = Instant::now() + poll;
        let mut guard = self.generation.lock().expect("signal mutex");
        while *guard == seen {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return;
            };
            let (g, timeout) = self
                .cv
                .wait_timeout(guard, remaining)
                .expect("signal mutex");
            guard = g;
            if timeout.timed_out() {
                return;
            }
        }
    }
}

/// Per-query fault state, built at admission from the service fault
/// plan scoped by query id: each query draws its own per-request
/// decision stream while structural faults (outages, slow shards,
/// crashes) stay shared.
struct Chaos {
    store: FaultingStore,
    retry: RetryPolicy,
}

/// The engine's view of the resident graph while one worker executes
/// one chunk: the worker's persistent cache in front of its faultless
/// store transport, with the query's chaos verdicts evaluated *before*
/// the cache on every logical access. Decisions are decision-only
/// ([`FaultingStore::route_for`]) so a cache hit and a cache miss see
/// the same fault stream — per-chunk failure outcomes stay a pure
/// function of the fault seed even though the caches are warm and
/// shared across queries.
///
/// [`DataSource`] cannot return errors, so the first error is parked in
/// a slot (first-error-wins), the access returns an empty adjacency set
/// to unwind the engine cheaply, and the worker converts the poisoned
/// slot into [`CommitState::submit_failed`] after the chunk.
struct ChunkSource<'a> {
    transport: &'a Transport,
    cache: &'a DbCache,
    chaos: Option<&'a Chaos>,
    error: Mutex<Option<ServiceError>>,
}

impl ChunkSource<'_> {
    /// Parks the first error and hands back the empty-set sentinel.
    fn poison(&self, err: ServiceError) -> Arc<AdjSet> {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
        Arc::new(AdjSet::new())
    }

    fn poisoned(&self) -> bool {
        self.error.lock().is_some()
    }

    fn take_error(&self) -> Option<ServiceError> {
        self.error.lock().take()
    }

    /// The chaos verdict for one logical access: replica failover
    /// within an attempt, virtual backoff between attempts, fail fast
    /// on hopeless outages — mirroring the batch transport's retry
    /// loop, with every wait booked to virtual time, never slept.
    fn verdict(&self, v: VertexId) -> Result<(), ServiceError> {
        let Some(chaos) = self.chaos else {
            return Ok(());
        };
        for attempt in 0..chaos.retry.max_attempts {
            match chaos.store.route_for(v, attempt) {
                Ok(_) => {
                    Transport::book_virtual(chaos.store.latency_penalty_routed(v, attempt));
                    return Ok(());
                }
                Err(fault) if fault.kind == FaultKind::Outage => {
                    return Err(ServiceError::StoreUnavailable {
                        vertex: v,
                        shard: fault.shard,
                    });
                }
                Err(fault) => {
                    if fault.kind == FaultKind::Timeout {
                        Transport::book_virtual(chaos.store.plan().timeout_wait());
                    }
                    if attempt + 1 >= chaos.retry.max_attempts {
                        return Err(ServiceError::RetryExhausted {
                            vertex: v,
                            shard: fault.shard,
                            attempts: chaos.retry.max_attempts,
                        });
                    }
                    Transport::book_virtual(chaos.retry.backoff(
                        chaos.store.plan().seed(),
                        v as u64,
                        attempt + 1,
                    ));
                }
            }
        }
        unreachable!("retry loop returns on success or exhausted attempts")
    }

    /// The chaos verdict for one logical batch over the *full* key set
    /// — same loop as [`ChunkSource::verdict`] at shard-batch
    /// granularity, so a batch access draws exactly one decision stream
    /// regardless of which keys the cache already holds.
    fn batch_verdict(&self, vs: &[VertexId]) -> Result<(), ServiceError> {
        let Some(chaos) = self.chaos else {
            return Ok(());
        };
        let key = vs.iter().copied().min().unwrap_or(0) as u64;
        for attempt in 0..chaos.retry.max_attempts {
            match chaos.store.route_many(vs, attempt) {
                Ok(_) => {
                    Transport::book_virtual(chaos.store.batch_latency_penalty_routed(vs, attempt));
                    return Ok(());
                }
                Err(fault) if fault.kind == FaultKind::Outage => {
                    return Err(ServiceError::StoreUnavailable {
                        vertex: batch_error_vertex(self.transport.store(), vs, fault.shard),
                        shard: fault.shard,
                    });
                }
                Err(fault) => {
                    if fault.kind == FaultKind::Timeout {
                        Transport::book_virtual(chaos.store.plan().timeout_wait());
                    }
                    if attempt + 1 >= chaos.retry.max_attempts {
                        return Err(ServiceError::RetryExhausted {
                            vertex: batch_error_vertex(self.transport.store(), vs, fault.shard),
                            shard: fault.shard,
                            attempts: chaos.retry.max_attempts,
                        });
                    }
                    Transport::book_virtual(chaos.retry.backoff(
                        chaos.store.plan().seed(),
                        key,
                        attempt + 1,
                    ));
                }
            }
        }
        unreachable!("retry loop returns on success or exhausted attempts")
    }

    /// One fetch through the faultless serve path: warm cache first,
    /// then the worker's transport. A vertex missing from the resident
    /// store (or decoding to garbage) is a data error of this query,
    /// not a process abort.
    fn fetch(&self, v: VertexId) -> Result<Arc<AdjSet>, ServiceError> {
        self.verdict(v)?;
        self.cache
            .get_or_fetch(v, || resident_fetch(self.transport, v))
    }
}

/// Maps the faultless transport's error taxonomy into the service's.
/// The serve-path transport has no fault plan, so `Unavailable` here
/// means the store itself refused — surfaced with the transport's own
/// attempt accounting.
fn resident_fetch(transport: &Transport, v: VertexId) -> Result<Arc<AdjSet>, ServiceError> {
    match transport.fetch(v) {
        Ok(Some(adj)) => Ok(adj),
        Ok(None) => Err(ServiceError::CorruptValue {
            vertex: v,
            detail: "missing from the resident store".into(),
        }),
        Err(FetchError::Corrupt(err)) => Err(ServiceError::CorruptValue {
            vertex: err.vertex,
            detail: err.error.to_string(),
        }),
        Err(FetchError::Unavailable(err)) => Err(ServiceError::RetryExhausted {
            vertex: err.vertex,
            shard: err.shard,
            attempts: err.attempts,
        }),
    }
}

/// The first vertex of `vs` whose placement involves `shard` — the
/// representative vertex a batch failure names.
fn batch_error_vertex(store: &KvStore, vs: &[VertexId], shard: usize) -> VertexId {
    vs.iter()
        .copied()
        .find(|&v| store.placement(v).any(|s| s == shard))
        .unwrap_or_default()
}

impl DataSource for ChunkSource<'_> {
    fn num_vertices(&self) -> usize {
        self.transport.store().num_vertices()
    }

    fn get_adj(&self, v: VertexId) -> Arc<AdjSet> {
        match self.fetch(v) {
            Ok(adj) => adj,
            Err(err) => self.poison(err),
        }
    }

    fn get_adj_batch(&self, vs: &[VertexId]) -> Vec<Arc<AdjSet>> {
        if let Err(err) = self.batch_verdict(vs) {
            let empty = self.poison(err);
            return vs.iter().map(|_| Arc::clone(&empty)).collect();
        }
        let mut out: Vec<Option<Arc<AdjSet>>> = vec![None; vs.len()];
        let mut missing_slots = Vec::new();
        let mut missing_keys = Vec::new();
        for (i, &v) in vs.iter().enumerate() {
            match self.cache.get(v) {
                Some(adj) => out[i] = Some(adj),
                None => {
                    missing_slots.push(i);
                    missing_keys.push(v);
                }
            }
        }
        if !missing_keys.is_empty() {
            match self.transport.fetch_many(&missing_keys) {
                Ok(values) => {
                    for (j, value) in values.into_iter().enumerate() {
                        out[missing_slots[j]] = Some(match value {
                            Some(adj) => {
                                self.cache.insert(missing_keys[j], Arc::clone(&adj));
                                adj
                            }
                            None => self.poison(ServiceError::CorruptValue {
                                vertex: missing_keys[j],
                                detail: "missing from the resident store".into(),
                            }),
                        });
                    }
                }
                Err(err) => {
                    let err = match err {
                        FetchError::Corrupt(c) => ServiceError::CorruptValue {
                            vertex: c.vertex,
                            detail: c.error.to_string(),
                        },
                        FetchError::Unavailable(t) => ServiceError::RetryExhausted {
                            vertex: t.vertex,
                            shard: t.shard,
                            attempts: t.attempts,
                        },
                    };
                    let empty = self.poison(err);
                    for &slot in &missing_slots {
                        out[slot] = Some(Arc::clone(&empty));
                    }
                }
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every slot filled"))
            .collect()
    }
}

/// Mutable per-query state behind one lock: the commit pipeline while
/// the query runs, the final result once it terminates.
struct RunState {
    commit: Option<CommitState>,
    result: Option<QueryResult>,
}

/// One admitted query, shared between the submitter and the workers.
struct QueryRun {
    id: QueryId,
    options: QueryOptions,
    exec_mode: ExecMode,
    plan: Arc<CachedPlan>,
    /// `placement[i]` = submitted-pattern vertex at canonical position
    /// `i` (plans are compiled for the canonical numbering).
    placement: Vec<PatternVertex>,
    tasks: Vec<SearchTask>,
    chunk_tasks: usize,
    plan_cache_hit: bool,
    submitted_at: Instant,
    /// Per-query fault state (scoped plan + retry policy); `None`
    /// serves faultlessly.
    chaos: Option<Chaos>,
    /// First chunk granted — flips `Queued` to `Running`.
    started: AtomicBool,
    /// Terminal decided: workers skip granted chunks and abort DFS
    /// chunks at the next task boundary.
    terminated: AtomicBool,
    /// Counted against the inflight cap (admitted past the gates and
    /// not yet finalised).
    counted: AtomicBool,
    state: Mutex<RunState>,
}

impl QueryRun {
    /// The task-index range of `chunk`.
    fn chunk_range(&self, chunk: usize) -> std::ops::Range<usize> {
        let start = chunk * self.chunk_tasks;
        start..self.tasks.len().min(start + self.chunk_tasks)
    }
}

/// One pattern class's observed-cardinality record: the plan the
/// observation was made against and the accumulated per-instruction
/// counts of every exhaustively completed query that ran it. Counter
/// accumulation is commutative, so the record — and the re-planning it
/// drives — is independent of completion order.
struct FeedbackEntry {
    hash: u64,
    canonical: Pattern,
    plan: ExecutionPlan,
    obs: PlanObs,
    replanned: bool,
}

struct Inner {
    config: ServiceConfig,
    store: Arc<KvStore>,
    order: Arc<TotalOrder>,
    degrees: Vec<u32>,
    graph_edges: usize,
    caches: Vec<Arc<DbCache>>,
    plan_cache: PlanCache,
    /// Observed-stats store keyed by the plan cache's canonical hash
    /// (innermost lock — taken under `queries` and query-state locks,
    /// never the reverse).
    feedback: Mutex<Vec<FeedbackEntry>>,
    replans: AtomicU64,
    queue: crate::fair::FairQueue<Arc<QueryRun>>,
    queries: Mutex<Vec<Arc<QueryRun>>>,
    obs: Option<Arc<ObsHub>>,
    shutdown: AtomicBool,
    work: Signal,
    done: Signal,
    completions: AtomicU64,
    /// Surviving (not crashed) serving workers.
    alive: AtomicUsize,
    /// The most recent crashed lane — named by pool-dead rejections.
    dead_lane: AtomicUsize,
    /// Queries admitted past the gates and not yet finalised.
    inflight: AtomicUsize,
    admitted: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    deadline_exceeded: AtomicU64,
    failed: AtomicU64,
    degraded: AtomicU64,
    rejected: AtomicU64,
    requeued_chunks: AtomicU64,
}

/// The serving front end. See the module docs; construct with
/// [`QueryService::new`], submit with [`QueryService::submit`], and
/// collect with [`QueryService::wait`]. Dropping the service drains the
/// queue and joins the worker pool.
pub struct QueryService {
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

/// A store mutation applied between loading the resident graph and
/// starting the worker pool (chaos-test hook).
type StoreRot<'a> = Box<dyn FnOnce(&mut KvStore) + 'a>;

impl QueryService {
    /// Loads `g` into the service's sharded store and starts the worker
    /// pool.
    pub fn new(g: &Graph, config: ServiceConfig) -> Self {
        Self::build(g, config, None, None)
    }

    /// Like [`QueryService::new`], with an observability hub: store and
    /// cache tiers record into its registry, per-query phase spans land
    /// on its virtual-clock tracer, and `service.*` counters mirror the
    /// admission lifecycle.
    pub fn new_observed(g: &Graph, config: ServiceConfig, hub: Arc<ObsHub>) -> Self {
        Self::build(g, config, Some(hub), None)
    }

    /// Like [`QueryService::new`], applying `rot` to the resident store
    /// after load and before serving. A chaos-test hook: corrupt or
    /// drop stored values and assert the request path fails the
    /// affected *query* (structured [`ServiceError`]) instead of the
    /// process.
    pub fn new_corrupted(g: &Graph, config: ServiceConfig, rot: impl FnOnce(&mut KvStore)) -> Self {
        Self::build(g, config, None, Some(Box::new(rot)))
    }

    fn build(
        g: &Graph,
        config: ServiceConfig,
        obs: Option<Arc<ObsHub>>,
        rot: Option<StoreRot<'_>>,
    ) -> Self {
        config.validate();
        let store = {
            let _span = obs.as_ref().map(|h| h.tracer.span("store_load"));
            let mut store = KvStore::from_graph_with(
                g,
                config.resolved_store_shards(),
                config.replication,
                config.codec,
            );
            if let Some(rot) = rot {
                rot(&mut store);
            }
            if let Some(hub) = &obs {
                store.attach_obs(&hub.registry);
            }
            Arc::new(store)
        };
        let caches = (0..config.workers)
            .map(|_| {
                let mut cache = DbCache::new(config.cache_capacity_bytes, config.cache_shards);
                if let Some(hub) = &obs {
                    cache.attach_obs(CacheObs::register(&hub.registry, "db"));
                }
                Arc::new(cache)
            })
            .collect();
        let inner = Arc::new(Inner {
            store,
            order: Arc::new(TotalOrder::new(g)),
            degrees: g.vertices().map(|v| g.degree(v) as u32).collect(),
            graph_edges: g.num_edges(),
            caches,
            plan_cache: PlanCache::new(config.plan_cache_entries),
            feedback: Mutex::new(Vec::new()),
            replans: AtomicU64::new(0),
            queue: crate::fair::FairQueue::new(config.workers),
            queries: Mutex::new(Vec::new()),
            obs,
            shutdown: AtomicBool::new(false),
            work: Signal::new(),
            done: Signal::new(),
            completions: AtomicU64::new(0),
            alive: AtomicUsize::new(config.workers),
            dead_lane: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            admitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            requeued_chunks: AtomicU64::new(0),
            config,
        });
        let threads = (0..inner.config.workers)
            .map(|lane| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(inner, lane))
            })
            .collect();
        QueryService { inner, threads }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// Plan-cache counters.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.inner.plan_cache.stats()
    }

    /// Pattern classes re-planned from observed cardinalities so far
    /// (always 0 unless [`ServiceConfig::feedback_replanning`] is set).
    pub fn feedback_replans(&self) -> u64 {
        self.inner.replans.load(Ordering::Relaxed)
    }

    /// Un-granted chunks currently queued across every admitted query.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.depth()
    }

    /// Admits `pattern` and returns its [`QueryId`]. Plan resolution
    /// (cache lookup or compile) and task generation happen inside the
    /// admission lock, so QueryIds, plan-cache hit/miss sequences and
    /// task lists are a deterministic function of the submission order.
    ///
    /// Admission control runs under the same lock against the backlog
    /// snapshot (see [`crate::admission`]): a shed query settles
    /// immediately as [`Terminal::Rejected`] without executing, and a
    /// submission into a fully dead worker pool settles as
    /// [`Terminal::Failed`]\([`ServiceError::WorkerLost`]). Both are
    /// terminal results, not errors of the submit call.
    pub fn submit(&self, pattern: &Pattern, options: QueryOptions) -> QueryId {
        let inner = &*self.inner;
        let mut queries = inner.queries.lock();
        let id = queries.len() as QueryId;
        let (plan, placement, hit) = {
            let _span = inner
                .obs
                .as_ref()
                .map(|h| h.tracer.span(&format!("query.{id}.compile")));
            inner
                .plan_cache
                .get_or_compile(pattern, inner.store.num_vertices(), inner.graph_edges)
        };
        // Feedback re-planning: a repeat submission of an observed
        // pattern class swaps in a plan re-ranked from the recorded
        // cardinalities (once per class; still inside the admission
        // lock, so the swap is ordered with every other submission).
        let plan = if inner.config.feedback_replanning {
            inner.maybe_replan(&plan).unwrap_or(plan)
        } else {
            plan
        };
        let exec_mode = options.exec_mode.unwrap_or(inner.config.exec_mode);
        let tasks = inner.generate_tasks(&plan);
        let total_chunks = tasks.len().div_ceil(inner.config.chunk_tasks);
        let commit = CommitState::new(
            total_chunks,
            &options.mode,
            options.deadline_vticks,
            options.max_matches,
            inner.config.graceful_degradation,
        );
        let chaos = inner.config.fault_plan.as_ref().map(|plan| Chaos {
            store: FaultingStore::new(Arc::clone(&inner.store), Arc::new(plan.scoped(id))),
            retry: inner.config.retry,
        });
        let weight = options.weight;
        let deadline = options.deadline_vticks;
        let run = Arc::new(QueryRun {
            id,
            options,
            exec_mode,
            plan,
            placement,
            tasks,
            chunk_tasks: inner.config.chunk_tasks,
            plan_cache_hit: hit,
            submitted_at: Instant::now(),
            chaos,
            started: AtomicBool::new(false),
            terminated: AtomicBool::new(false),
            counted: AtomicBool::new(false),
            state: Mutex::new(RunState {
                commit: Some(commit),
                result: None,
            }),
        });
        queries.push(Arc::clone(&run));
        inner.admitted.fetch_add(1, Ordering::Relaxed);
        if let Some(hub) = &inner.obs {
            hub.registry.counter("service.admitted").inc();
            if hit {
                hub.registry.counter("service.plan_cache.hits").inc();
            }
            let _queued = hub.tracer.span(&format!("query.{id}.queue"));
        }
        let mut state = run.state.lock();
        if state
            .commit
            .as_ref()
            .is_some_and(|c| c.terminal().is_some())
        {
            // Terminal at admission: deadline 0, max_matches 0, TopK(0),
            // or an empty task list. Nothing is queued.
            run.terminated.store(true, Ordering::Release);
            state
                .commit
                .as_mut()
                .expect("commit present until finalised")
                .skip(total_chunks);
            inner.after_state_change(&run, &mut state);
        } else if inner.alive.load(Ordering::Acquire) == 0 {
            // The whole pool crashed: nothing can execute this query
            // and nothing ever will.
            let commit = state
                .commit
                .as_mut()
                .expect("commit present until finalised");
            commit.set_terminal(Terminal::Failed(ServiceError::WorkerLost {
                lane: inner.dead_lane.load(Ordering::Acquire),
                chunk: 0,
            }));
            commit.skip(total_chunks);
            inner.after_state_change(&run, &mut state);
        } else {
            let verdict = admission::evaluate(
                AdmissionCaps {
                    max_inflight_queries: inner.config.max_inflight_queries,
                    max_queued_chunks: inner.config.max_queued_chunks,
                    deadline_aware: inner.config.admission_deadline_aware,
                    chunk_tasks: inner.config.chunk_tasks,
                },
                LoadSnapshot {
                    inflight_queries: inner.inflight.load(Ordering::Acquire),
                    queued_chunks: inner.queue.depth(),
                },
                total_chunks,
                deadline,
            );
            match verdict {
                AdmissionVerdict::Shed { retry_after_vticks } => {
                    let commit = state
                        .commit
                        .as_mut()
                        .expect("commit present until finalised");
                    commit.set_terminal(Terminal::Rejected { retry_after_vticks });
                    commit.skip(total_chunks);
                    inner.after_state_change(&run, &mut state);
                }
                AdmissionVerdict::Admit => {
                    run.counted.store(true, Ordering::Release);
                    inner.inflight.fetch_add(1, Ordering::AcqRel);
                    inner.queue.admit(
                        id,
                        Arc::clone(&run),
                        weight,
                        inner.config.scheduler,
                        total_chunks,
                    );
                    inner.sync_queue_depth();
                    inner.work.notify();
                }
            }
        }
        drop(state);
        drop(queries);
        id
    }

    /// Non-blocking lifecycle view; `None` for an unknown id.
    pub fn status(&self, id: QueryId) -> Option<QueryStatus> {
        let run = Arc::clone(self.inner.queries.lock().get(id as usize)?);
        let state = run.state.lock();
        Some(match &state.result {
            Some(result) => QueryStatus::Finished(result.clone()),
            None if run.started.load(Ordering::Acquire) => QueryStatus::Running,
            None => QueryStatus::Queued,
        })
    }

    /// Cancels `id`. Queued chunks are released immediately, an in-flight
    /// DFS chunk aborts at its next task boundary, and the query settles
    /// with [`Terminal::Cancelled`] (committed work stays reported as the
    /// partial it is — [`QueryResult::is_partial`]). Returns true when
    /// this call made the transition; false if the query already
    /// terminated (or the id is unknown).
    pub fn cancel(&self, id: QueryId) -> bool {
        let Some(run) = self.inner.queries.lock().get(id as usize).map(Arc::clone) else {
            return false;
        };
        let mut state = run.state.lock();
        let Some(commit) = state.commit.as_mut() else {
            return false;
        };
        if !commit.set_terminal(Terminal::Cancelled) {
            return false;
        }
        self.inner.after_state_change(&run, &mut state);
        true
    }

    /// Blocks until `id` terminates and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never returned by [`QueryService::submit`].
    pub fn wait(&self, id: QueryId) -> QueryResult {
        let run = Arc::clone(
            self.inner
                .queries
                .lock()
                .get(id as usize)
                .expect("unknown query id"),
        );
        loop {
            let seen = self.inner.done.current();
            if let Some(result) = &run.state.lock().result {
                return result.clone();
            }
            self.inner
                .done
                .wait_past(seen, self.inner.config.signal_poll);
        }
    }

    /// The service's report subtree. `Deterministic` mode is built
    /// purely from commit-pipeline state — admission counters, plan
    /// cache, one entry per terminated query — and is identical across
    /// worker counts, schedulers and execution modes. `Full` mode adds
    /// wall-clock latencies and merges the hub's registry/trace report
    /// when the service is observed.
    pub fn report(&self, mode: ReportMode) -> Report {
        let inner = &*self.inner;
        let mut service = Report::new();
        service.set("admitted", inner.admitted.load(Ordering::Relaxed));
        service.set("completed", inner.completed.load(Ordering::Relaxed));
        service.set("cancelled", inner.cancelled.load(Ordering::Relaxed));
        service.set(
            "deadline_exceeded",
            inner.deadline_exceeded.load(Ordering::Relaxed),
        );
        service.set("failed", inner.failed.load(Ordering::Relaxed));
        service.set("degraded", inner.degraded.load(Ordering::Relaxed));
        service.set("rejected", inner.rejected.load(Ordering::Relaxed));
        service.set("queue_depth", inner.queue.depth());
        if mode == ReportMode::Full {
            // Requeue counts depend on where the crash cut the grant
            // stream — real observability, not deterministic surface.
            service.set(
                "requeued_chunks",
                inner.requeued_chunks.load(Ordering::Relaxed),
            );
        }
        let pc = inner.plan_cache.stats();
        let mut plan_cache = Report::new();
        plan_cache.set("hits", pc.hits);
        plan_cache.set("misses", pc.misses);
        plan_cache.set("evictions", pc.evictions);
        plan_cache.set("entries", pc.entries);
        service.set_tree("plan_cache", plan_cache);
        service.set("feedback_replans", inner.replans.load(Ordering::Relaxed));
        for run in inner.queries.lock().iter() {
            let state = run.state.lock();
            let Some(result) = &state.result else {
                continue;
            };
            let mut q = Report::new();
            q.set("terminal", result.terminal.name());
            q.set("mode", run.options.mode.name());
            q.set("matches_found", result.matches_found);
            q.set("vticks", result.vticks);
            q.set("chunks_committed", result.chunks_committed);
            q.set("chunks_discarded", result.chunks_discarded);
            q.set("exhaustive", result.exhaustive);
            q.set("plan_cache_hit", result.plan_cache_hit);
            if let Terminal::Failed(err) = &result.terminal {
                q.set("error", err.name());
            }
            if !result.dark_shards.is_empty() {
                q.set("dark_shards", result.dark_shards.len());
            }
            if mode == ReportMode::Full {
                // Completion order and wall latency depend on worker
                // timing — real observability, but not part of the
                // deterministic surface.
                q.set("completion_index", result.completion_index);
                q.set("wall_nanos", result.wall.as_nanos() as u64);
            }
            service.set_tree(&format!("query.{}", run.id), q);
        }
        let mut report = Report::new();
        report.set_tree("service", service);
        if mode == ReportMode::Full {
            if let Some(hub) = &inner.obs {
                report.merge(hub.report(mode));
            }
        }
        report
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.work.notify();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Lane parameter fed to the adaptive τ choice, deliberately *not* the
/// worker count: the task list fixes chunk boundaries, and chunk
/// boundaries fix where budgets are evaluated and how many virtual
/// ticks a query accrues — all part of the determinism contract
/// ("identical results at any concurrency"), so τ must be a pure
/// function of the graph and the plan.
const AUTO_TAU_VIRTUAL_LANES: usize = 8;

impl Inner {
    /// The §V-B task list for a cached plan, exactly as the batch
    /// cluster generates it — except that adaptive τ targets a fixed
    /// virtual lane count instead of `workers`, keeping the task list
    /// (and with it vticks and budget boundaries) identical at any
    /// concurrency.
    fn generate_tasks(&self, plan: &CachedPlan) -> Vec<SearchTask> {
        let second_adjacent = plan.compiled.second_adjacent;
        let tau = if plan.compiled.second_vertex.is_none() {
            0
        } else if self.config.tau_auto {
            benu_engine::task::auto_tau(&self.degrees, AUTO_TAU_VIRTUAL_LANES, second_adjacent)
        } else {
            self.config.tau
        };
        benu_engine::task::generate_tasks_from_degrees(&self.degrees, tau, second_adjacent)
    }

    /// The Chung-Lu estimator over the resident degree distribution —
    /// the prior the feedback estimator corrects.
    fn chung_lu_prior(&self) -> ChungLuEstimator {
        let max_d = self.degrees.iter().copied().max().unwrap_or(0) as usize;
        let mut hist = vec![0usize; max_d + 1];
        for &d in &self.degrees {
            hist[d as usize] += 1;
        }
        ChungLuEstimator::from_degree_histogram(&hist)
    }

    /// Feedback re-planning at admission: when the submitted pattern
    /// class has an observation recorded against exactly the cached
    /// plan and has not been re-planned yet, recompile with the
    /// feedback estimator, replace the cache entry, and serve the new
    /// compilation. Pure function of the recorded observation.
    fn maybe_replan(&self, current: &Arc<CachedPlan>) -> Option<Arc<CachedPlan>> {
        let hash = fingerprint(&current.canonical);
        let mut feedback = self.feedback.lock();
        let entry = feedback
            .iter_mut()
            .find(|e| e.hash == hash && e.canonical == current.canonical)?;
        if entry.replanned || entry.plan != current.plan || entry.obs.is_empty() {
            return None;
        }
        let est = FeedbackEstimator::new(self.chung_lu_prior(), &entry.plan, &entry.obs);
        let plan = PlanBuilder::new(&entry.canonical)
            .observed_feedback(est)
            .best_plan();
        entry.replanned = true;
        self.replans.fetch_add(1, Ordering::Relaxed);
        if let Some(hub) = &self.obs {
            hub.registry.counter("service.feedback.replans").inc();
        }
        Some(self.plan_cache.replace(entry.canonical.clone(), plan))
    }

    /// Records a completed query's observed per-instruction
    /// cardinalities against its pattern class. Only observations made
    /// against the plan already on record accumulate (counter addition
    /// commutes, so the record is completion-order-independent).
    fn record_feedback(&self, run: &QueryRun, obs: &PlanObs) {
        let hash = fingerprint(&run.plan.canonical);
        let mut feedback = self.feedback.lock();
        if let Some(entry) = feedback
            .iter_mut()
            .find(|e| e.hash == hash && e.canonical == run.plan.canonical)
        {
            if entry.plan == run.plan.plan {
                entry.obs += *obs;
            }
            return;
        }
        feedback.push(FeedbackEntry {
            hash,
            canonical: run.plan.canonical.clone(),
            plan: run.plan.plan.clone(),
            obs: *obs,
            replanned: false,
        });
    }

    fn sync_queue_depth(&self) {
        if let Some(hub) = &self.obs {
            hub.registry
                .gauge("service.queue_depth")
                .set(self.queue.depth() as i64);
        }
    }

    /// Reacts to a commit-state change: on a fresh terminal, raises the
    /// terminated flag and releases the query's queued chunks; once
    /// every chunk is accounted for, finalises the result.
    fn after_state_change(&self, run: &Arc<QueryRun>, state: &mut RunState) {
        let commit = state
            .commit
            .as_mut()
            .expect("commit present until finalised");
        if commit.terminal().is_some() && !run.terminated.swap(true, Ordering::AcqRel) {
            let released = self.queue.drain(run.id);
            commit.skip(released);
            self.sync_queue_depth();
        }
        if state.result.is_some() || !state.commit.as_ref().is_some_and(|c| c.is_complete()) {
            return;
        }
        let commit = state.commit.take().expect("checked above");
        let out = commit.finish();
        if run.counted.swap(false, Ordering::AcqRel) {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
        }
        let counter = match &out.terminal {
            Terminal::Completed | Terminal::MaxMatchesReached => {
                self.completed.fetch_add(1, Ordering::Relaxed);
                "service.completed"
            }
            Terminal::Cancelled => {
                self.cancelled.fetch_add(1, Ordering::Relaxed);
                "service.cancelled"
            }
            Terminal::DeadlineExceeded => {
                self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                "service.deadline_exceeded"
            }
            Terminal::Failed(_) => {
                self.failed.fetch_add(1, Ordering::Relaxed);
                "service.failed"
            }
            Terminal::DegradedPartial => {
                self.degraded.fetch_add(1, Ordering::Relaxed);
                "service.degraded"
            }
            Terminal::Rejected { .. } => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                "service.rejected"
            }
        };
        if let Some(hub) = &self.obs {
            hub.registry.counter(counter).inc();
            // Committed work only — the deterministic share of the run.
            out.metrics.record_into(&hub.registry);
        }
        // Exhaustively completed queries feed the observed-stats store:
        // their committed metrics cover the full enumeration, so the
        // recorded cardinalities are exact for the plan that ran.
        if self.config.feedback_replanning
            && out.exhaustive
            && matches!(out.terminal, Terminal::Completed)
            && !out.metrics.obs.is_empty()
        {
            self.record_feedback(run, &out.metrics.obs);
        }
        state.result = Some(QueryResult {
            id: run.id,
            terminal: out.terminal,
            matches_found: out.matches_found,
            matches: out.matches,
            vticks: out.vticks,
            chunks_committed: out.committed,
            chunks_discarded: out.discarded,
            plan_cache_hit: run.plan_cache_hit,
            exhaustive: out.exhaustive,
            dark_shards: out.dark_shards,
            completion_index: self.completions.fetch_add(1, Ordering::SeqCst),
            metrics: out.metrics,
            wall: run.submitted_at.elapsed(),
        });
        self.done.notify();
    }
}

/// Virtual ticks of a chunk: one per task plus every instruction
/// execution and candidate enumeration — counts the hybrid-equivalence
/// suite pins as identical across execution modes, so a query's latency
/// (and its deadline semantics) is mode- and concurrency-independent.
/// Injected-fault penalties (backoff, timeout waits, slow shards) are
/// deliberately *excluded*: a recovered fault must not shift deadline
/// semantics, or results would depend on the fault seed.
fn chunk_vticks(tasks: usize, m: &TaskMetrics) -> u64 {
    tasks as u64
        + m.enu_candidates
        + m.dbq_executions
        + m.int_executions
        + m.trc_executions
        + m.kcache_executions
}

/// Remaps an embedding of the canonical pattern back to the submitted
/// numbering: `out[placement[i]] = f[i]`.
fn remap(f: &[VertexId], placement: &[PatternVertex]) -> Vec<VertexId> {
    let mut out = vec![0; f.len()];
    for (i, &v) in f.iter().enumerate() {
        out[placement[i]] = v;
    }
    out
}

fn worker_loop(inner: Arc<Inner>, lane: usize) {
    let transport = Transport::new(Arc::clone(&inner.store));
    let cache = Arc::clone(&inner.caches[lane]);
    // An injected crash takes effect at chunk granularity: after
    // `crash_at` executed chunks, the next granted chunk triggers the
    // crash — the worker dies holding an unexecuted chunk, which is
    // exactly the recovery case worth exercising.
    let crash_at = inner
        .config
        .fault_plan
        .as_ref()
        .and_then(|p| p.crash_after(lane));
    let mut executed: u64 = 0;
    loop {
        let seen = inner.work.current();
        match inner.queue.next(lane) {
            Some((run, chunk)) => {
                if crash_at.is_some_and(|after| executed >= after) {
                    crash_worker(&inner, lane, &run, chunk);
                    return;
                }
                inner.sync_queue_depth();
                execute_chunk(&inner, &transport, &cache, &run, chunk);
                executed += 1;
            }
            None if inner.shutdown.load(Ordering::Acquire) => break,
            None => inner.work.wait_past(seen, inner.config.signal_poll),
        }
    }
}

/// An injected worker crash, caught at the grant boundary while the
/// worker holds one unexecuted chunk. With survivors the crash is
/// invisible to results: the lane's queued chunks migrate
/// ([`crate::fair::FairQueue::fail_lane`]) and the held chunk is
/// requeued for byte-identical re-execution (it never ran, and chaos
/// decisions are stateless per chunk). With no survivors every
/// non-terminal query fails with [`ServiceError::WorkerLost`] — a
/// structured terminal, not a hang and not an abort.
fn crash_worker(inner: &Inner, lane: usize, run: &Arc<QueryRun>, chunk: usize) {
    let survivors = inner.alive.fetch_sub(1, Ordering::AcqRel) - 1;
    inner.dead_lane.store(lane, Ordering::Release);
    inner.queue.fail_lane(lane);
    if let Some(hub) = &inner.obs {
        hub.registry.counter("service.worker_crashes").inc();
    }
    if survivors > 0 {
        if run.terminated.load(Ordering::Acquire) {
            // The query settled while we held its chunk: account the
            // grant as discarded rather than putting dead work back.
            let mut state = run.state.lock();
            if let Some(commit) = state.commit.as_mut() {
                commit.skip(1);
            }
            inner.after_state_change(run, &mut state);
        } else {
            inner.queue.requeue(
                run.id,
                Arc::clone(run),
                run.options.weight,
                inner.config.scheduler,
                chunk,
            );
            inner.requeued_chunks.fetch_add(1, Ordering::Relaxed);
            if let Some(hub) = &inner.obs {
                hub.registry.counter("service.requeued_chunks").inc();
            }
        }
        inner.sync_queue_depth();
        inner.work.notify();
        return;
    }
    // Last worker down: no survivor can ever run the backlog. Fail every
    // non-terminal query; the holder's error names its held chunk,
    // siblings' name their next uncommitted chunk.
    let queries = inner.queries.lock();
    for q in queries.iter() {
        let mut state = q.state.lock();
        let Some(commit) = state.commit.as_mut() else {
            continue;
        };
        if commit.terminal().is_none() {
            let failed_chunk = if q.id == run.id {
                chunk
            } else {
                commit.next_chunk()
            };
            commit.set_terminal(Terminal::Failed(ServiceError::WorkerLost {
                lane,
                chunk: failed_chunk,
            }));
        }
        if q.id == run.id {
            // The chunk dying in our hands is accounted as discarded.
            commit.skip(1);
        }
        inner.after_state_change(q, &mut state);
    }
    inner.sync_queue_depth();
    inner.work.notify();
}

/// Executes one granted chunk and feeds the outcome to the query's
/// commit pipeline. A chunk of a terminated query is skipped (or, for
/// DFS, aborted at the next task boundary) and accounted as discarded;
/// a chunk whose access stream hit an unrecoverable fault reports
/// [`CommitState::submit_failed`] instead of results.
fn execute_chunk(
    inner: &Inner,
    transport: &Transport,
    cache: &Arc<DbCache>,
    run: &Arc<QueryRun>,
    chunk: usize,
) {
    run.started.store(true, Ordering::Release);
    if run.terminated.load(Ordering::Acquire) {
        let mut state = run.state.lock();
        if let Some(commit) = state.commit.as_mut() {
            commit.skip(1);
        }
        inner.after_state_change(run, &mut state);
        return;
    }
    let _span = inner
        .obs
        .as_ref()
        .map(|h| h.tracer.span(&format!("query.{}.execute", run.id)));
    let range = run.chunk_range(chunk);
    let tasks = &run.tasks[range];
    let needs_matches = run.options.mode.needs_matches();
    let source = ChunkSource {
        transport,
        cache,
        chaos: run.chaos.as_ref(),
        error: Mutex::new(None),
    };
    let engine = LocalEngine::with_triangle_cache(
        &run.plan.compiled,
        &source,
        &inner.order,
        inner.config.triangle_cache_entries,
    )
    .with_pooling(inner.config.pooled_buffers);
    let mut counting = CountingConsumer::default();
    let mut collecting = CollectingConsumer::default();
    let mut metrics = TaskMetrics::default();
    let mut aborted = false;
    match run.exec_mode {
        ExecMode::Dfs => {
            let mut engine = engine;
            for &task in tasks {
                if run.terminated.load(Ordering::Acquire) {
                    aborted = true;
                    break;
                }
                // A poisoned source already decided the chunk's fate;
                // the remaining tasks' work would be discarded anyway.
                if source.poisoned() {
                    break;
                }
                let consumer: &mut dyn MatchConsumer = if needs_matches {
                    &mut collecting
                } else {
                    &mut counting
                };
                metrics += engine.run_task(task, consumer);
            }
        }
        ExecMode::Hybrid => {
            // The whole chunk is one frontier batch: sibling tasks share
            // deduplicated batched store reads, bounded per worker.
            let budget =
                MemoryBudget::bytes(inner.config.memory_budget_bytes / inner.config.workers);
            let mut frontier = FrontierEngine::new(engine, budget);
            let consumer: &mut dyn MatchConsumer = if needs_matches {
                &mut collecting
            } else {
                &mut counting
            };
            metrics = frontier.run_batch(tasks, consumer);
        }
    }
    // Injected-fault waits (virtual backoff, timeout waits, slow-shard
    // penalties) accumulated on this thread are observability, not
    // query latency — draining them here keeps vticks (and deadline
    // semantics) invariant under recovered faults.
    let penalty = Transport::take_task_penalty();
    if !penalty.is_zero() {
        if let Some(hub) = &inner.obs {
            hub.registry
                .counter("service.fault_penalty_nanos")
                .add(penalty.as_nanos() as u64);
        }
    }
    let error = source.take_error();
    let mut state = run.state.lock();
    if aborted {
        if let Some(commit) = state.commit.as_mut() {
            commit.skip(1);
        }
    } else if let Some(err) = error {
        // Whatever partial matches the engine produced before the
        // poison are dropped with the chunk: a failed chunk contributes
        // nothing, which is what keeps failure outcomes deterministic.
        if let Some(commit) = state.commit.as_mut() {
            commit.submit_failed(chunk, err);
        }
    } else {
        let mut matches: Vec<Vec<VertexId>> = collecting
            .into_matches()
            .iter()
            .map(|f| remap(f, &run.placement))
            .collect();
        matches.sort_unstable();
        let executed = ExecutedChunk {
            chunk,
            count: metrics.matches,
            matches,
            vticks: chunk_vticks(tasks.len(), &metrics),
            metrics,
        };
        if let Some(hub) = &inner.obs {
            hub.tracer.clock().advance(executed.vticks);
        }
        if let Some(commit) = state.commit.as_mut() {
            commit.submit(executed);
        }
    }
    inner.after_state_change(run, &mut state);
}
