//! The query service: admission, worker pool, commit, reporting.
//!
//! One [`QueryService`] owns a resident data graph — a sharded
//! [`KvStore`] plus one persistent per-worker [`DbCache`] — and serves
//! any number of concurrent pattern queries against it. Admission
//! compiles (or plan-cache-resolves) the pattern, generates the split
//! task list exactly as the batch [`benu_cluster::Cluster`] would, and
//! enqueues fixed task-index-range *chunks* into the weighted
//! round-robin [`crate::fair`] queue. Worker threads pull one chunk at
//! a time — the cross-query fairness granularity — execute it with the
//! regular engine (DFS task-at-a-time, or the memory-bounded hybrid as
//! one frontier batch), and hand the outcome to the query's
//! [`CommitState`], which enforces in-order commit and every budget.
//!
//! Determinism contract: a query's terminal status, match count,
//! committed match stream and virtual-time latency are a pure function
//! of `(graph, pattern, options, chunk_tasks)` — independent of worker
//! count, scheduler kind, execution mode, and whatever else is running
//! concurrently. See DESIGN.md §4h.

use crate::commit::{CommitState, ExecutedChunk};
use crate::config::ServiceConfig;
use crate::plan_cache::{CachedPlan, PlanCache, PlanCacheStats};
use crate::query::{QueryId, QueryOptions, QueryResult, QueryStatus, Terminal};
use benu_cache::{CacheObs, DbCache};
use benu_cluster::transport::Transport;
use benu_cluster::ExecMode;
use benu_engine::{
    CollectingConsumer, CountingConsumer, DataSource, FrontierEngine, LocalEngine, MatchConsumer,
    MemoryBudget, SearchTask, TaskMetrics,
};
use benu_graph::{AdjSet, Graph, TotalOrder, VertexId};
use benu_kvstore::KvStore;
use benu_obs::{ObsHub, Report, ReportMode};
use benu_pattern::{Pattern, PatternVertex};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A condvar-backed edge-triggered signal: `notify` bumps a generation,
/// `wait_past` sleeps until the generation moves (with a timeout
/// backstop so a missed wakeup degrades to a short poll, never a hang).
struct Signal {
    generation: std::sync::Mutex<u64>,
    cv: std::sync::Condvar,
}

impl Signal {
    fn new() -> Self {
        Signal {
            generation: std::sync::Mutex::new(0),
            cv: std::sync::Condvar::new(),
        }
    }

    fn notify(&self) {
        let mut generation = self.generation.lock().expect("signal mutex");
        *generation += 1;
        self.cv.notify_all();
    }

    fn current(&self) -> u64 {
        *self.generation.lock().expect("signal mutex")
    }

    fn wait_past(&self, seen: u64) {
        let guard = self.generation.lock().expect("signal mutex");
        if *guard != seen {
            return;
        }
        let _ = self
            .cv
            .wait_timeout(guard, Duration::from_millis(10))
            .expect("signal mutex");
    }
}

/// The engine's view of the resident graph from one serving worker:
/// the worker's persistent cache in front of its store transport. The
/// service runs without fault injection, so transport errors cannot
/// occur and a vertex missing from the store is a programming error
/// (tasks are generated from the same graph the store was loaded from).
struct ServiceSource {
    transport: Transport,
    cache: Arc<DbCache>,
}

impl DataSource for ServiceSource {
    fn num_vertices(&self) -> usize {
        self.transport.store().num_vertices()
    }

    fn get_adj(&self, v: VertexId) -> Arc<AdjSet> {
        self.cache
            .get_or_fetch(v, || match self.transport.fetch(v) {
                Ok(Some(adj)) => Ok(adj),
                Ok(None) => Err(()),
                Err(err) => panic!("faultless transport failed: {err}"),
            })
            .unwrap_or_else(|()| panic!("vertex {v} missing from the resident store"))
    }

    fn get_adj_batch(&self, vs: &[VertexId]) -> Vec<Arc<AdjSet>> {
        let mut out: Vec<Option<Arc<AdjSet>>> = vec![None; vs.len()];
        let mut missing_slots = Vec::new();
        let mut missing_keys = Vec::new();
        for (i, &v) in vs.iter().enumerate() {
            match self.cache.get(v) {
                Some(adj) => out[i] = Some(adj),
                None => {
                    missing_slots.push(i);
                    missing_keys.push(v);
                }
            }
        }
        if !missing_keys.is_empty() {
            let values = self
                .transport
                .fetch_many(&missing_keys)
                .unwrap_or_else(|err| panic!("faultless transport failed: {err}"));
            for (j, value) in values.into_iter().enumerate() {
                let adj = value.unwrap_or_else(|| panic!("vertex {} missing", missing_keys[j]));
                self.cache.insert(missing_keys[j], Arc::clone(&adj));
                out[missing_slots[j]] = Some(adj);
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every slot filled"))
            .collect()
    }
}

/// Mutable per-query state behind one lock: the commit pipeline while
/// the query runs, the final result once it terminates.
struct RunState {
    commit: Option<CommitState>,
    result: Option<QueryResult>,
}

/// One admitted query, shared between the submitter and the workers.
struct QueryRun {
    id: QueryId,
    options: QueryOptions,
    exec_mode: ExecMode,
    plan: Arc<CachedPlan>,
    /// `placement[i]` = submitted-pattern vertex at canonical position
    /// `i` (plans are compiled for the canonical numbering).
    placement: Vec<PatternVertex>,
    tasks: Vec<SearchTask>,
    chunk_tasks: usize,
    plan_cache_hit: bool,
    submitted_at: Instant,
    /// First chunk granted — flips `Queued` to `Running`.
    started: AtomicBool,
    /// Terminal decided: workers skip granted chunks and abort DFS
    /// chunks at the next task boundary.
    terminated: AtomicBool,
    state: Mutex<RunState>,
}

impl QueryRun {
    /// The task-index range of `chunk`.
    fn chunk_range(&self, chunk: usize) -> std::ops::Range<usize> {
        let start = chunk * self.chunk_tasks;
        start..self.tasks.len().min(start + self.chunk_tasks)
    }
}

struct Inner {
    config: ServiceConfig,
    store: Arc<KvStore>,
    order: Arc<TotalOrder>,
    degrees: Vec<u32>,
    graph_edges: usize,
    caches: Vec<Arc<DbCache>>,
    plan_cache: PlanCache,
    queue: crate::fair::FairQueue<Arc<QueryRun>>,
    queries: Mutex<Vec<Arc<QueryRun>>>,
    obs: Option<Arc<ObsHub>>,
    shutdown: AtomicBool,
    work: Signal,
    done: Signal,
    completions: AtomicU64,
    admitted: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    deadline_exceeded: AtomicU64,
}

/// The serving front end. See the module docs; construct with
/// [`QueryService::new`], submit with [`QueryService::submit`], and
/// collect with [`QueryService::wait`]. Dropping the service drains the
/// queue and joins the worker pool.
pub struct QueryService {
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

impl QueryService {
    /// Loads `g` into the service's sharded store and starts the worker
    /// pool.
    pub fn new(g: &Graph, config: ServiceConfig) -> Self {
        Self::build(g, config, None)
    }

    /// Like [`QueryService::new`], with an observability hub: store and
    /// cache tiers record into its registry, per-query phase spans land
    /// on its virtual-clock tracer, and `service.*` counters mirror the
    /// admission lifecycle.
    pub fn new_observed(g: &Graph, config: ServiceConfig, hub: Arc<ObsHub>) -> Self {
        Self::build(g, config, Some(hub))
    }

    fn build(g: &Graph, config: ServiceConfig, obs: Option<Arc<ObsHub>>) -> Self {
        config.validate();
        let store = {
            let _span = obs.as_ref().map(|h| h.tracer.span("store_load"));
            let mut store =
                KvStore::from_graph_with(g, config.workers, config.replication, config.codec);
            if let Some(hub) = &obs {
                store.attach_obs(&hub.registry);
            }
            Arc::new(store)
        };
        let caches = (0..config.workers)
            .map(|_| {
                let mut cache = DbCache::new(config.cache_capacity_bytes, config.cache_shards);
                if let Some(hub) = &obs {
                    cache.attach_obs(CacheObs::register(&hub.registry, "db"));
                }
                Arc::new(cache)
            })
            .collect();
        let inner = Arc::new(Inner {
            store,
            order: Arc::new(TotalOrder::new(g)),
            degrees: g.vertices().map(|v| g.degree(v) as u32).collect(),
            graph_edges: g.num_edges(),
            caches,
            plan_cache: PlanCache::new(config.plan_cache_entries),
            queue: crate::fair::FairQueue::new(),
            queries: Mutex::new(Vec::new()),
            obs,
            shutdown: AtomicBool::new(false),
            work: Signal::new(),
            done: Signal::new(),
            completions: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            config,
        });
        let threads = (0..config.workers)
            .map(|lane| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(inner, lane))
            })
            .collect();
        QueryService { inner, threads }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// Plan-cache counters.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.inner.plan_cache.stats()
    }

    /// Un-granted chunks currently queued across every admitted query.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.depth()
    }

    /// Admits `pattern` and returns its [`QueryId`]. Plan resolution
    /// (cache lookup or compile) and task generation happen inside the
    /// admission lock, so QueryIds, plan-cache hit/miss sequences and
    /// task lists are a deterministic function of the submission order.
    pub fn submit(&self, pattern: &Pattern, options: QueryOptions) -> QueryId {
        let inner = &*self.inner;
        let mut queries = inner.queries.lock();
        let id = queries.len() as QueryId;
        let (plan, placement, hit) = {
            let _span = inner
                .obs
                .as_ref()
                .map(|h| h.tracer.span(&format!("query.{id}.compile")));
            inner
                .plan_cache
                .get_or_compile(pattern, inner.store.num_vertices(), inner.graph_edges)
        };
        let exec_mode = options.exec_mode.unwrap_or(inner.config.exec_mode);
        let tasks = inner.generate_tasks(&plan);
        let total_chunks = tasks.len().div_ceil(inner.config.chunk_tasks);
        let commit = CommitState::new(
            total_chunks,
            &options.mode,
            options.deadline_vticks,
            options.max_matches,
        );
        let weight = options.weight;
        let run = Arc::new(QueryRun {
            id,
            options,
            exec_mode,
            plan,
            placement,
            tasks,
            chunk_tasks: inner.config.chunk_tasks,
            plan_cache_hit: hit,
            submitted_at: Instant::now(),
            started: AtomicBool::new(false),
            terminated: AtomicBool::new(false),
            state: Mutex::new(RunState {
                commit: Some(commit),
                result: None,
            }),
        });
        queries.push(Arc::clone(&run));
        inner.admitted.fetch_add(1, Ordering::Relaxed);
        if let Some(hub) = &inner.obs {
            hub.registry.counter("service.admitted").inc();
            if hit {
                hub.registry.counter("service.plan_cache.hits").inc();
            }
            let _queued = hub.tracer.span(&format!("query.{id}.queue"));
        }
        let mut state = run.state.lock();
        if state
            .commit
            .as_ref()
            .is_some_and(|c| c.terminal().is_some())
        {
            // Terminal at admission: deadline 0, max_matches 0, TopK(0),
            // or an empty task list. Nothing is queued.
            run.terminated.store(true, Ordering::Release);
            state
                .commit
                .as_mut()
                .expect("commit present until finalised")
                .skip(total_chunks);
            inner.after_state_change(&run, &mut state);
        } else {
            inner.queue.admit(
                id,
                Arc::clone(&run),
                weight,
                inner.config.scheduler,
                total_chunks,
                inner.config.workers,
            );
            inner.sync_queue_depth();
            inner.work.notify();
        }
        drop(state);
        drop(queries);
        id
    }

    /// Non-blocking lifecycle view; `None` for an unknown id.
    pub fn status(&self, id: QueryId) -> Option<QueryStatus> {
        let run = Arc::clone(self.inner.queries.lock().get(id as usize)?);
        let state = run.state.lock();
        Some(match &state.result {
            Some(result) => QueryStatus::Finished(result.clone()),
            None if run.started.load(Ordering::Acquire) => QueryStatus::Running,
            None => QueryStatus::Queued,
        })
    }

    /// Cancels `id`. Queued chunks are released immediately, an in-flight
    /// DFS chunk aborts at its next task boundary, and the query settles
    /// with [`Terminal::Cancelled`] (committed work stays reported as the
    /// partial it is — [`QueryResult::is_partial`]). Returns true when
    /// this call made the transition; false if the query already
    /// terminated (or the id is unknown).
    pub fn cancel(&self, id: QueryId) -> bool {
        let Some(run) = self.inner.queries.lock().get(id as usize).map(Arc::clone) else {
            return false;
        };
        let mut state = run.state.lock();
        let Some(commit) = state.commit.as_mut() else {
            return false;
        };
        if !commit.set_terminal(Terminal::Cancelled) {
            return false;
        }
        self.inner.after_state_change(&run, &mut state);
        true
    }

    /// Blocks until `id` terminates and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never returned by [`QueryService::submit`].
    pub fn wait(&self, id: QueryId) -> QueryResult {
        let run = Arc::clone(
            self.inner
                .queries
                .lock()
                .get(id as usize)
                .expect("unknown query id"),
        );
        loop {
            let seen = self.inner.done.current();
            if let Some(result) = &run.state.lock().result {
                return result.clone();
            }
            self.inner.done.wait_past(seen);
        }
    }

    /// The service's report subtree. `Deterministic` mode is built
    /// purely from commit-pipeline state — admission counters, plan
    /// cache, one entry per terminated query — and is identical across
    /// worker counts, schedulers and execution modes. `Full` mode adds
    /// wall-clock latencies and merges the hub's registry/trace report
    /// when the service is observed.
    pub fn report(&self, mode: ReportMode) -> Report {
        let inner = &*self.inner;
        let mut service = Report::new();
        service.set("admitted", inner.admitted.load(Ordering::Relaxed));
        service.set("completed", inner.completed.load(Ordering::Relaxed));
        service.set("cancelled", inner.cancelled.load(Ordering::Relaxed));
        service.set(
            "deadline_exceeded",
            inner.deadline_exceeded.load(Ordering::Relaxed),
        );
        service.set("queue_depth", inner.queue.depth());
        let pc = inner.plan_cache.stats();
        let mut plan_cache = Report::new();
        plan_cache.set("hits", pc.hits);
        plan_cache.set("misses", pc.misses);
        plan_cache.set("evictions", pc.evictions);
        plan_cache.set("entries", pc.entries);
        service.set_tree("plan_cache", plan_cache);
        for run in inner.queries.lock().iter() {
            let state = run.state.lock();
            let Some(result) = &state.result else {
                continue;
            };
            let mut q = Report::new();
            q.set("terminal", result.terminal.name());
            q.set("mode", run.options.mode.name());
            q.set("matches_found", result.matches_found);
            q.set("vticks", result.vticks);
            q.set("chunks_committed", result.chunks_committed);
            q.set("chunks_discarded", result.chunks_discarded);
            q.set("exhaustive", result.exhaustive);
            q.set("plan_cache_hit", result.plan_cache_hit);
            if mode == ReportMode::Full {
                // Completion order and wall latency depend on worker
                // timing — real observability, but not part of the
                // deterministic surface.
                q.set("completion_index", result.completion_index);
                q.set("wall_nanos", result.wall.as_nanos() as u64);
            }
            service.set_tree(&format!("query.{}", run.id), q);
        }
        let mut report = Report::new();
        report.set_tree("service", service);
        if mode == ReportMode::Full {
            if let Some(hub) = &inner.obs {
                report.merge(hub.report(mode));
            }
        }
        report
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.work.notify();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Lane parameter fed to the adaptive τ choice, deliberately *not* the
/// worker count: the task list fixes chunk boundaries, and chunk
/// boundaries fix where budgets are evaluated and how many virtual
/// ticks a query accrues — all part of the determinism contract
/// ("identical results at any concurrency"), so τ must be a pure
/// function of the graph and the plan.
const AUTO_TAU_VIRTUAL_LANES: usize = 8;

impl Inner {
    /// The §V-B task list for a cached plan, exactly as the batch
    /// cluster generates it — except that adaptive τ targets a fixed
    /// virtual lane count instead of `workers`, keeping the task list
    /// (and with it vticks and budget boundaries) identical at any
    /// concurrency.
    fn generate_tasks(&self, plan: &CachedPlan) -> Vec<SearchTask> {
        let second_adjacent = plan.compiled.second_adjacent;
        let tau = if plan.compiled.second_vertex.is_none() {
            0
        } else if self.config.tau_auto {
            benu_engine::task::auto_tau(&self.degrees, AUTO_TAU_VIRTUAL_LANES, second_adjacent)
        } else {
            self.config.tau
        };
        benu_engine::task::generate_tasks_from_degrees(&self.degrees, tau, second_adjacent)
    }

    fn sync_queue_depth(&self) {
        if let Some(hub) = &self.obs {
            hub.registry
                .gauge("service.queue_depth")
                .set(self.queue.depth() as i64);
        }
    }

    /// Reacts to a commit-state change: on a fresh terminal, raises the
    /// terminated flag and releases the query's queued chunks; once
    /// every chunk is accounted for, finalises the result.
    fn after_state_change(&self, run: &Arc<QueryRun>, state: &mut RunState) {
        let commit = state
            .commit
            .as_mut()
            .expect("commit present until finalised");
        if commit.terminal().is_some() && !run.terminated.swap(true, Ordering::AcqRel) {
            let released = self.queue.drain(run.id);
            commit.skip(released);
            self.sync_queue_depth();
        }
        if state.result.is_some() || !state.commit.as_ref().is_some_and(|c| c.is_complete()) {
            return;
        }
        let commit = state.commit.take().expect("checked above");
        let (terminal, found, matches, vticks, committed, discarded, exhaustive, metrics) =
            commit.finish();
        match terminal {
            Terminal::Completed | Terminal::MaxMatchesReached => {
                self.completed.fetch_add(1, Ordering::Relaxed);
            }
            Terminal::Cancelled => {
                self.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            Terminal::DeadlineExceeded => {
                self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(hub) = &self.obs {
            let name = match terminal {
                Terminal::Completed | Terminal::MaxMatchesReached => "service.completed",
                Terminal::Cancelled => "service.cancelled",
                Terminal::DeadlineExceeded => "service.deadline_exceeded",
            };
            hub.registry.counter(name).inc();
            // Committed work only — the deterministic share of the run.
            metrics.record_into(&hub.registry);
        }
        state.result = Some(QueryResult {
            id: run.id,
            terminal,
            matches_found: found,
            matches,
            vticks,
            chunks_committed: committed,
            chunks_discarded: discarded,
            plan_cache_hit: run.plan_cache_hit,
            exhaustive,
            completion_index: self.completions.fetch_add(1, Ordering::SeqCst),
            metrics,
            wall: run.submitted_at.elapsed(),
        });
        self.done.notify();
    }
}

/// Virtual ticks of a chunk: one per task plus every instruction
/// execution and candidate enumeration — counts the hybrid-equivalence
/// suite pins as identical across execution modes, so a query's latency
/// (and its deadline semantics) is mode- and concurrency-independent.
fn chunk_vticks(tasks: usize, m: &TaskMetrics) -> u64 {
    tasks as u64
        + m.enu_candidates
        + m.dbq_executions
        + m.int_executions
        + m.trc_executions
        + m.kcache_executions
}

/// Remaps an embedding of the canonical pattern back to the submitted
/// numbering: `out[placement[i]] = f[i]`.
fn remap(f: &[VertexId], placement: &[PatternVertex]) -> Vec<VertexId> {
    let mut out = vec![0; f.len()];
    for (i, &v) in f.iter().enumerate() {
        out[placement[i]] = v;
    }
    out
}

fn worker_loop(inner: Arc<Inner>, lane: usize) {
    let source = ServiceSource {
        transport: Transport::new(Arc::clone(&inner.store)),
        cache: Arc::clone(&inner.caches[lane]),
    };
    loop {
        let seen = inner.work.current();
        match inner.queue.next(lane) {
            Some((run, chunk)) => {
                inner.sync_queue_depth();
                execute_chunk(&inner, &source, &run, chunk);
            }
            None if inner.shutdown.load(Ordering::Acquire) => break,
            None => inner.work.wait_past(seen),
        }
    }
}

/// Executes one granted chunk and feeds the outcome to the query's
/// commit pipeline. A chunk of a terminated query is skipped (or, for
/// DFS, aborted at the next task boundary) and accounted as discarded.
fn execute_chunk(inner: &Inner, source: &ServiceSource, run: &Arc<QueryRun>, chunk: usize) {
    run.started.store(true, Ordering::Release);
    if run.terminated.load(Ordering::Acquire) {
        let mut state = run.state.lock();
        if let Some(commit) = state.commit.as_mut() {
            commit.skip(1);
        }
        inner.after_state_change(run, &mut state);
        return;
    }
    let _span = inner
        .obs
        .as_ref()
        .map(|h| h.tracer.span(&format!("query.{}.execute", run.id)));
    let range = run.chunk_range(chunk);
    let tasks = &run.tasks[range];
    let needs_matches = run.options.mode.needs_matches();
    let engine = LocalEngine::with_triangle_cache(
        &run.plan.compiled,
        source,
        &inner.order,
        inner.config.triangle_cache_entries,
    )
    .with_pooling(inner.config.pooled_buffers);
    let mut counting = CountingConsumer::default();
    let mut collecting = CollectingConsumer::default();
    let mut metrics = TaskMetrics::default();
    let mut aborted = false;
    match run.exec_mode {
        ExecMode::Dfs => {
            let mut engine = engine;
            for &task in tasks {
                if run.terminated.load(Ordering::Acquire) {
                    aborted = true;
                    break;
                }
                let consumer: &mut dyn MatchConsumer = if needs_matches {
                    &mut collecting
                } else {
                    &mut counting
                };
                metrics += engine.run_task(task, consumer);
            }
        }
        ExecMode::Hybrid => {
            // The whole chunk is one frontier batch: sibling tasks share
            // deduplicated batched store reads, bounded per worker.
            let budget =
                MemoryBudget::bytes(inner.config.memory_budget_bytes / inner.config.workers);
            let mut frontier = FrontierEngine::new(engine, budget);
            let consumer: &mut dyn MatchConsumer = if needs_matches {
                &mut collecting
            } else {
                &mut counting
            };
            metrics = frontier.run_batch(tasks, consumer);
        }
    }
    let mut state = run.state.lock();
    if aborted {
        if let Some(commit) = state.commit.as_mut() {
            commit.skip(1);
        }
    } else {
        let mut matches: Vec<Vec<VertexId>> = collecting
            .into_matches()
            .iter()
            .map(|f| remap(f, &run.placement))
            .collect();
        matches.sort_unstable();
        let executed = ExecutedChunk {
            chunk,
            count: metrics.matches,
            matches,
            vticks: chunk_vticks(tasks.len(), &metrics),
            metrics,
        };
        if let Some(hub) = &inner.obs {
            hub.tracer.clock().advance(executed.vticks);
        }
        if let Some(commit) = state.commit.as_mut() {
            commit.submit(executed);
        }
    }
    inner.after_state_change(run, &mut state);
}
