//! Satellite: the service chaos suite.
//!
//! Seeded fault injection against the serving layer, crossed over
//! worker counts, schedulers and execution modes. The resilience
//! contract under test (DESIGN.md §4j):
//!
//! * recovered faults (transients, timeouts, replica failover, worker
//!   crashes with survivors) are *invisible* — results byte-identical
//!   to a faultless run across the whole matrix;
//! * unrecoverable faults settle exactly one query with a structured
//!   [`ServiceError`] (or [`Terminal::DegradedPartial`] when opted
//!   in), never a panic and never a sibling;
//! * which queries fail, and with what, is a pure function of the
//!   fault seed and the execution mode's access granularity —
//!   identical across worker counts, schedulers and replays. (DFS
//!   draws one fault decision per vertex access, hybrid one per
//!   deduplicated shard batch, so *failure* outcomes are compared
//!   within a mode; *recovered* runs are identical across modes too.)

use benu_cluster::{ExecMode, SchedulerKind};
use benu_graph::gen;
use benu_pattern::queries;
use benu_service::{
    FaultPlan, QueryOptions, QueryResult, QueryService, ResultMode, RetryPolicy, ServiceConfig,
    ServiceConfigBuilder, ServiceError, Terminal,
};

fn graph() -> benu_graph::Graph {
    gen::barabasi_albert(120, 4, 7)
}

/// Store sharding is pinned: fault decisions are keyed by `(shard,
/// vertex)`, so a fixed deployment shape is what makes failure outcomes
/// comparable across worker counts.
fn base(workers: usize, scheduler: SchedulerKind, exec_mode: ExecMode) -> ServiceConfigBuilder {
    ServiceConfig::builder()
        .workers(workers)
        .scheduler(scheduler)
        .exec_mode(exec_mode)
        .store_shards(4)
        .chunk_tasks(16)
}

/// The fixed query mix: counting, collecting, budgeted and sampled.
fn run_mix(config: ServiceConfig) -> Vec<QueryResult> {
    let g = graph();
    let service = QueryService::new(&g, config);
    let ids = vec![
        service.submit(&queries::triangle(), QueryOptions::new()),
        service.submit(
            &queries::triangle(),
            QueryOptions::new().mode(ResultMode::Collect),
        ),
        service.submit(
            &queries::q1(),
            QueryOptions::new().mode(ResultMode::Collect),
        ),
        service.submit(
            &queries::q2(),
            QueryOptions::new().mode(ResultMode::Sample { n: 5, seed: 3 }),
        ),
        service.submit(&queries::square(), QueryOptions::new().max_matches(500)),
    ];
    ids.into_iter().map(|id| service.wait(id)).collect()
}

/// The comparable surface of a result: everything except wall time and
/// completion order (which legitimately depend on worker timing).
fn surface(r: &QueryResult) -> impl PartialEq + std::fmt::Debug {
    (
        r.id,
        r.terminal.clone(),
        r.matches_found,
        r.matches.clone(),
        r.vticks,
        r.chunks_committed,
        r.chunks_discarded,
        r.exhaustive,
        r.dark_shards.clone(),
        r.metrics,
    )
}

/// Runs the mix for one execution mode under every (workers, scheduler)
/// combination of `make` and asserts the full result surfaces —
/// including failures, degradations and their error payloads — are
/// identical everywhere. Returns the (verified common) result set.
fn mode_invariant(
    exec_mode: ExecMode,
    make: impl Fn(usize, SchedulerKind, ExecMode) -> ServiceConfig,
) -> Vec<QueryResult> {
    let mut baseline: Option<Vec<QueryResult>> = None;
    for workers in [1, 4] {
        for scheduler in [SchedulerKind::Static, SchedulerKind::WorkStealing] {
            let results = run_mix(make(workers, scheduler, exec_mode));
            match &baseline {
                None => baseline = Some(results),
                Some(expect) => {
                    for (got, want) in results.iter().zip(expect) {
                        assert_eq!(
                            surface(got),
                            surface(want),
                            "query {} diverged at workers={workers} {scheduler} {exec_mode:?}",
                            got.id
                        );
                    }
                }
            }
        }
    }
    baseline.expect("at least one configuration ran")
}

#[test]
fn recovered_transients_and_timeouts_are_invisible() {
    let faultless = run_mix(base(4, SchedulerKind::WorkStealing, ExecMode::Dfs).build());
    // Recovered faults leave no trace, so the matrix extends across
    // execution modes too: every configuration must equal the faultless
    // baseline byte-for-byte, virtual latency included.
    for exec_mode in [ExecMode::Dfs, ExecMode::Hybrid] {
        let faulted = mode_invariant(exec_mode, |workers, scheduler, exec_mode| {
            let plan = FaultPlan::builder(11)
                .transient_rate(0.02)
                .timeout_rate(0.02)
                .build();
            base(workers, scheduler, exec_mode).fault_plan(plan).build()
        });
        for (got, want) in faulted.iter().zip(&faultless) {
            assert_eq!(
                surface(got),
                surface(want),
                "recovered faults must not change query {} in {exec_mode:?}",
                got.id
            );
            assert!(matches!(
                got.terminal,
                Terminal::Completed | Terminal::MaxMatchesReached
            ));
        }
    }
}

#[test]
fn retry_exhaustion_fails_only_affected_queries_deterministically() {
    // Two attempts against a moderate fault rate: each query draws its
    // own scoped decision stream, so some queries exhaust the budget
    // and some survive — a per-query outcome, not a service-wide one.
    let results = mode_invariant(ExecMode::Dfs, |workers, scheduler, exec_mode| {
        let plan = FaultPlan::builder(23).transient_rate(0.06).build();
        base(workers, scheduler, exec_mode)
            .fault_plan(plan)
            .retry(RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            })
            .build()
    });
    let statuses: Vec<_> = results.iter().map(|r| r.terminal.name()).collect();
    let failed: Vec<_> = results
        .iter()
        .filter(|r| matches!(r.terminal, Terminal::Failed(_)))
        .collect();
    let completed: Vec<_> = results
        .iter()
        .filter(|r| !matches!(r.terminal, Terminal::Failed(_)))
        .collect();
    assert!(
        !failed.is_empty(),
        "the seed must fail at least one query: {statuses:?}"
    );
    assert!(
        !completed.is_empty(),
        "siblings of a failed query must keep completing: {statuses:?}"
    );
    for r in &failed {
        assert!(
            matches!(
                r.terminal,
                Terminal::Failed(ServiceError::RetryExhausted { attempts: 2, .. })
            ),
            "failure must carry the structured exhaustion error, got {:?}",
            r.terminal
        );
    }
    // Survivors are byte-identical to the faultless run — recovered
    // retries leave no trace in results or virtual latency.
    let faultless = run_mix(base(4, SchedulerKind::WorkStealing, ExecMode::Dfs).build());
    for r in &completed {
        let want = &faultless[r.id as usize];
        assert_eq!(surface(r), surface(want), "survivor {} diverged", r.id);
    }
}

#[test]
fn hybrid_batch_faults_surface_the_same_taxonomy() {
    // Hybrid draws one fault decision per deduplicated shard batch; a
    // rate hot enough to exhaust two attempts across a chunk's batches
    // fails queries with the same structured error, deterministically
    // across workers and schedulers.
    let results = mode_invariant(ExecMode::Hybrid, |workers, scheduler, exec_mode| {
        let plan = FaultPlan::builder(31).transient_rate(0.45).build();
        base(workers, scheduler, exec_mode)
            .fault_plan(plan)
            .retry(RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            })
            .build()
    });
    assert!(
        results.iter().any(|r| matches!(
            r.terminal,
            Terminal::Failed(ServiceError::RetryExhausted { .. })
        )),
        "the hot seed must exhaust at least one query: {:?}",
        results
            .iter()
            .map(|r| r.terminal.name())
            .collect::<Vec<_>>()
    );
}

#[test]
fn unreplicated_shard_outage_fails_queries_with_structured_errors() {
    for exec_mode in [ExecMode::Dfs, ExecMode::Hybrid] {
        let results = mode_invariant(exec_mode, |workers, scheduler, exec_mode| {
            let plan = FaultPlan::builder(5).shard_outage(0, 1).build();
            base(workers, scheduler, exec_mode).fault_plan(plan).build()
        });
        for r in &results {
            match &r.terminal {
                Terminal::Failed(ServiceError::StoreUnavailable { shard, .. }) => {
                    assert_eq!(*shard, 0, "the outage names the dark shard");
                }
                other => panic!(
                    "query {} must fail on the dark shard without degradation, got {other:?}",
                    r.id
                ),
            }
            assert!(
                r.dark_shards.is_empty(),
                "failed queries report no dark shards"
            );
        }
    }
}

#[test]
fn graceful_degradation_turns_the_outage_into_partial_results() {
    let faultless = run_mix(base(4, SchedulerKind::WorkStealing, ExecMode::Dfs).build());
    for exec_mode in [ExecMode::Dfs, ExecMode::Hybrid] {
        let results = mode_invariant(exec_mode, |workers, scheduler, exec_mode| {
            let plan = FaultPlan::builder(5).shard_outage(0, 1).build();
            base(workers, scheduler, exec_mode)
                .fault_plan(plan)
                .graceful_degradation(true)
                .build()
        });
        for (r, full) in results.iter().zip(&faultless) {
            assert_eq!(
                r.terminal,
                Terminal::DegradedPartial,
                "query {} must degrade, not fail",
                r.id
            );
            assert_eq!(
                r.dark_shards,
                vec![0],
                "the partial is flagged with its dark shard"
            );
            assert!(!r.exhaustive, "a degraded result is never exhaustive");
            assert!(
                r.matches_found <= full.matches_found,
                "a partial can never overcount"
            );
            // Committed partials are honest subsets of the faultless
            // stream.
            for m in &r.matches {
                assert!(
                    full.matches.contains(m),
                    "degraded match {m:?} must exist in the faultless result"
                );
            }
        }
    }
}

#[test]
fn replication_masks_the_outage_entirely() {
    // Same dark shard, but every placement group has a live replica:
    // failover serves the request and results are byte-identical to the
    // faultless run — no failure, no degradation, no vtick drift.
    let faultless = run_mix(base(4, SchedulerKind::WorkStealing, ExecMode::Dfs).build());
    let plan = FaultPlan::builder(5).shard_outage(0, 1).build();
    let results = run_mix(
        base(4, SchedulerKind::WorkStealing, ExecMode::Dfs)
            .replication(2)
            .fault_plan(plan)
            .build(),
    );
    for (got, want) in results.iter().zip(&faultless) {
        assert_eq!(surface(got), surface(want), "failover must be invisible");
    }
}

#[test]
fn worker_crashes_with_survivors_are_invisible() {
    let faultless = run_mix(base(4, SchedulerKind::WorkStealing, ExecMode::Dfs).build());
    // Crashed lanes hand their queued chunks to survivors and the
    // chunks they died holding re-execute elsewhere — byte-exact.
    let plan = FaultPlan::builder(7).crash(1, 1).crash(2, 2).build();
    for workers in [2, 4] {
        for scheduler in [SchedulerKind::Static, SchedulerKind::WorkStealing] {
            for exec_mode in [ExecMode::Dfs, ExecMode::Hybrid] {
                let results = run_mix(
                    base(workers, scheduler, exec_mode)
                        .fault_plan(plan.clone())
                        .build(),
                );
                for (got, want) in results.iter().zip(&faultless) {
                    assert_eq!(
                        surface(got),
                        surface(want),
                        "crash recovery must be byte-exact at workers={workers} \
                         {scheduler} {exec_mode:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn dead_pool_surfaces_worker_lost_instead_of_hanging() {
    let g = graph();
    let plan = FaultPlan::builder(3).crash(0, 1).build();
    let service = QueryService::new(
        &g,
        ServiceConfig::builder()
            .workers(1)
            .chunk_tasks(8)
            .fault_plan(plan)
            .build(),
    );
    let id = service.submit(
        &queries::triangle(),
        QueryOptions::new().mode(ResultMode::Collect),
    );
    let result = service.wait(id);
    match &result.terminal {
        Terminal::Failed(ServiceError::WorkerLost { lane: 0, .. }) => {}
        other => panic!("expected WorkerLost from the dead pool, got {other:?}"),
    }
    assert_eq!(
        result.chunks_committed, 1,
        "the one chunk executed before the crash still committed"
    );
    // The pool is gone: later submissions settle immediately with the
    // same structured error instead of queueing forever.
    let late = service.submit(&queries::triangle(), QueryOptions::new());
    let late = service.wait(late);
    assert!(
        matches!(
            late.terminal,
            Terminal::Failed(ServiceError::WorkerLost { lane: 0, .. })
        ),
        "post-crash submissions must fail fast, got {:?}",
        late.terminal
    );
}

#[test]
fn corrupt_store_fails_the_query_not_the_process() {
    // Regression: both ServiceSource panic paths ("vertex missing from
    // the resident store" and the transport corruption unwrap) are now
    // structured per-query errors.
    let g = graph();
    let missing = QueryService::new_corrupted(
        &g,
        ServiceConfig::builder().workers(2).chunk_tasks(16).build(),
        |store| assert!(store.remove_vertex(100), "chaos hook must bite"),
    );
    let id = missing.submit(
        &queries::triangle(),
        QueryOptions::new().mode(ResultMode::Collect),
    );
    let result = missing.wait(id);
    match &result.terminal {
        Terminal::Failed(ServiceError::CorruptValue {
            vertex: 100,
            detail,
        }) => {
            assert!(
                detail.contains("missing"),
                "detail names the damage: {detail}"
            );
        }
        other => panic!("expected CorruptValue for the removed vertex, got {other:?}"),
    }
    // The service keeps serving after the failure (no abort, no wedge).
    assert!(missing.status(id).is_some());

    let rotten = QueryService::new_corrupted(
        &g,
        ServiceConfig::builder().workers(2).chunk_tasks(16).build(),
        |store| assert!(store.corrupt_value(100), "chaos hook must bite"),
    );
    let id = rotten.submit(&queries::triangle(), QueryOptions::new());
    let result = rotten.wait(id);
    assert!(
        matches!(
            result.terminal,
            Terminal::Failed(ServiceError::CorruptValue { vertex: 100, .. })
        ),
        "expected CorruptValue for the damaged bytes, got {:?}",
        result.terminal
    );
}

/// The acceptance scenario: transient faults + a shard outage + a
/// worker crash across 16 concurrent queries on 4 workers, degradation
/// on. Every query settles in a terminal state (no hang, no abort),
/// both unrecoverable classes appear, and replaying the same seed
/// reproduces every status and every result byte-for-byte. (The
/// fourth resilience terminal, `Rejected`, is deterministically
/// load-dependent by design and is pinned by the admission suite.)
#[test]
fn seeded_chaos_scenario_replays_identically() {
    let run_scenario = || {
        let g = gen::barabasi_albert(200, 4, 13);
        let plan = FaultPlan::builder(77)
            .transient_rate(0.03)
            .timeout_rate(0.01)
            .shard_outage(2, 1)
            .crash(3, 2)
            .build();
        let service = QueryService::new(
            &g,
            ServiceConfig::builder()
                .workers(4)
                .store_shards(4)
                .chunk_tasks(16)
                .fault_plan(plan)
                .retry(RetryPolicy {
                    max_attempts: 2,
                    ..RetryPolicy::default()
                })
                .graceful_degradation(true)
                .build(),
        );
        let patterns = [
            queries::triangle(),
            queries::q1(),
            queries::q2(),
            queries::square(),
        ];
        let ids: Vec<_> = (0..16)
            .map(|i| {
                service.submit(
                    &patterns[i % patterns.len()],
                    QueryOptions::new().weight(1 + (i as u32) % 3),
                )
            })
            .collect();
        ids.into_iter()
            .map(|id| service.wait(id))
            .collect::<Vec<QueryResult>>()
    };
    let results = run_scenario();
    let statuses: Vec<_> = results.iter().map(|r| r.terminal.name()).collect();
    assert!(
        results.iter().all(|r| matches!(
            r.terminal,
            Terminal::Completed | Terminal::Failed(_) | Terminal::DegradedPartial
        )),
        "every query must settle in a resilience terminal: {statuses:?}"
    );
    assert!(
        results
            .iter()
            .any(|r| matches!(r.terminal, Terminal::DegradedPartial)),
        "the dark shard must degrade at least one query: {statuses:?}"
    );
    assert!(
        results
            .iter()
            .any(|r| matches!(r.terminal, Terminal::Failed(_))),
        "the fault pressure must fail at least one query: {statuses:?}"
    );
    for r in &results {
        if r.terminal == Terminal::DegradedPartial {
            assert_eq!(r.dark_shards, vec![2], "partials name the dark shard");
        }
    }
    // Same seed, same scenario, same everything.
    let replay = run_scenario();
    for (a, b) in results.iter().zip(&replay) {
        assert_eq!(surface(a), surface(b), "replay diverged on query {}", a.id);
    }
}
