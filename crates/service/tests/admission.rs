//! Satellite: admission-control and fairness regressions.
//!
//! Shedding is evaluated under the admission lock as a pure function of
//! the backlog snapshot (see `crate::admission`), so constructions that
//! pin the snapshot — an idle service, or a saturating query that is
//! orders of magnitude slower than the submit path — make rejection
//! itself deterministic and replayable. A rejected query executes
//! nothing, leaves no trace in the fair queue, and completes
//! identically when resubmitted after the backlog drains.

use benu_cluster::SchedulerKind;
use benu_graph::gen;
use benu_obs::ReportMode;
use benu_pattern::queries;
use benu_service::{
    FaultPlan, QueryOptions, QueryResult, QueryService, ResultMode, RetryPolicy, ServiceConfig,
    Terminal,
};

/// The comparable surface of a result (wall time and completion order
/// excluded).
fn surface(r: &QueryResult) -> impl PartialEq + std::fmt::Debug {
    (
        r.id,
        r.terminal.clone(),
        r.matches_found,
        r.matches.clone(),
        r.vticks,
        r.chunks_committed,
        r.chunks_discarded,
        r.exhaustive,
        r.dark_shards.clone(),
        r.metrics,
    )
}

fn assert_nothing_executed(r: &QueryResult) {
    assert_eq!(r.chunks_committed, 0, "a shed query executes nothing");
    assert_eq!(r.matches_found, 0);
    assert!(r.matches.is_empty());
    assert_eq!(r.vticks, 0);
    assert!(!r.exhaustive);
}

#[test]
fn oversized_submission_is_shed_even_on_an_idle_service() {
    // The chunk cap charges the incoming query's full footprint, so a
    // query bigger than the cap is rejected against *any* backlog —
    // including an empty one. That makes this shed fully deterministic:
    // no load, no timing, no seed.
    let g = gen::barabasi_albert(120, 4, 7);
    let service = QueryService::new(
        &g,
        ServiceConfig::builder()
            .workers(4)
            .chunk_tasks(16)
            .max_queued_chunks(4)
            .build(),
    );
    for _ in 0..3 {
        let id = service.submit(
            &queries::triangle(),
            QueryOptions::new().mode(ResultMode::Collect),
        );
        let result = service.wait(id);
        assert_eq!(
            result.terminal,
            Terminal::Rejected {
                retry_after_vticks: 1
            },
            "an idle backlog advises the minimum retry hint"
        );
        assert_nothing_executed(&result);
        assert_eq!(service.queue_depth(), 0, "a shed query is never queued");
    }
    // The same query against a cap that fits it completes normally —
    // the shed was the cap's verdict, not the query's.
    let roomy = QueryService::new(
        &g,
        ServiceConfig::builder()
            .workers(4)
            .chunk_tasks(16)
            .max_queued_chunks(100)
            .build(),
    );
    let id = roomy.submit(&queries::triangle(), QueryOptions::new());
    assert_eq!(roomy.wait(id).terminal, Terminal::Completed);
}

#[test]
fn rejected_then_resubmitted_completes_identically() {
    let g = gen::barabasi_albert(250, 5, 7);
    // Solo baseline: the triangle query on an uncapped, otherwise idle
    // service.
    let baseline = {
        let service = QueryService::new(
            &g,
            ServiceConfig::builder().workers(1).chunk_tasks(16).build(),
        );
        let id = service.submit(
            &queries::triangle(),
            QueryOptions::new().mode(ResultMode::Collect),
        );
        service.wait(id)
    };
    let service = QueryService::new(
        &g,
        ServiceConfig::builder()
            .workers(1)
            .chunk_tasks(16)
            .max_inflight_queries(1)
            .build(),
    );
    // Saturate the single inflight slot with a query whose runtime
    // dwarfs the submit path, then submit into the full service.
    let heavy = service.submit(
        &queries::q2(),
        QueryOptions::new().mode(ResultMode::Collect),
    );
    let rejected = service.submit(
        &queries::triangle(),
        QueryOptions::new().mode(ResultMode::Collect),
    );
    let rejected = service.wait(rejected);
    assert!(
        matches!(rejected.terminal, Terminal::Rejected { .. }),
        "the saturated inflight cap must shed, got {:?}",
        rejected.terminal
    );
    assert_nothing_executed(&rejected);
    // Drain the backlog, then resubmit: the retried query is admitted
    // and completes byte-identically to the solo baseline — rejection
    // left no residue in the caches, the fair queue or the commit path.
    let heavy = service.wait(heavy);
    assert_eq!(
        heavy.terminal,
        Terminal::Completed,
        "the sheddee's load was untouched"
    );
    let retried = service.submit(
        &queries::triangle(),
        QueryOptions::new().mode(ResultMode::Collect),
    );
    let retried = service.wait(retried);
    assert_eq!(retried.terminal, Terminal::Completed);
    assert_eq!(retried.matches, baseline.matches);
    assert_eq!(retried.matches_found, baseline.matches_found);
    assert_eq!(retried.vticks, baseline.vticks);
    assert_eq!(retried.chunks_committed, baseline.chunks_committed);
}

#[test]
fn deadline_aware_admission_sheds_infeasible_deadlines_under_backlog() {
    let g = gen::barabasi_albert(250, 5, 7);
    let config = || {
        ServiceConfig::builder()
            .workers(1)
            .chunk_tasks(16)
            .admission_deadline_aware(true)
            .build()
    };
    let service = QueryService::new(&g, config());
    // A heavy query queues far more chunks than one worker can drain
    // before the next submit lands; a 1-vtick deadline cannot beat that
    // backlog's guaranteed drain cost.
    let heavy = service.submit(&queries::q2(), QueryOptions::new());
    let urgent = service.submit(&queries::triangle(), QueryOptions::new().deadline_vticks(1));
    let urgent = service.wait(urgent);
    match urgent.terminal {
        Terminal::Rejected { retry_after_vticks } => {
            assert!(retry_after_vticks >= 1, "drain hint is never zero")
        }
        other => panic!("expected a deadline-aware shed, got {other:?}"),
    }
    assert_nothing_executed(&urgent);
    assert_eq!(service.wait(heavy).terminal, Terminal::Completed);
    // The same urgent query against an idle service is admitted — and
    // then settles through normal deadline semantics, not admission.
    let idle = QueryService::new(&g, config());
    let id = idle.submit(&queries::triangle(), QueryOptions::new().deadline_vticks(1));
    let result = idle.wait(id);
    assert_eq!(
        result.terminal,
        Terminal::DeadlineExceeded,
        "deadline-aware admission never rejects against an empty backlog"
    );
}

#[test]
fn weighted_fairness_survives_sibling_failure_and_recovery() {
    // Weighted queries racing a worker crash and per-query fault
    // streams hot enough to fail some of them: the failures are a pure
    // function of the seed, the survivors are byte-identical to a
    // faultless run with the same weights, and the deterministic report
    // replays exactly.
    let g = gen::barabasi_albert(120, 4, 7);
    let weights: [u32; 5] = [4, 1, 2, 1, 3];
    let mix = |config: ServiceConfig| {
        let service = QueryService::new(&g, config);
        let ids = vec![
            service.submit(&queries::triangle(), QueryOptions::new().weight(weights[0])),
            service.submit(
                &queries::triangle(),
                QueryOptions::new()
                    .weight(weights[1])
                    .mode(ResultMode::Collect),
            ),
            service.submit(
                &queries::q1(),
                QueryOptions::new()
                    .weight(weights[2])
                    .mode(ResultMode::Collect),
            ),
            service.submit(
                &queries::q2(),
                QueryOptions::new()
                    .weight(weights[3])
                    .mode(ResultMode::Sample { n: 5, seed: 3 }),
            ),
            service.submit(
                &queries::square(),
                QueryOptions::new().weight(weights[4]).max_matches(500),
            ),
        ];
        let results: Vec<QueryResult> = ids.into_iter().map(|id| service.wait(id)).collect();
        let report = service.report(ReportMode::Deterministic);
        (results, report)
    };
    let config = || {
        ServiceConfig::builder()
            .workers(4)
            .scheduler(SchedulerKind::WorkStealing)
            .store_shards(4)
            .chunk_tasks(16)
            .fault_plan(
                FaultPlan::builder(23)
                    .transient_rate(0.06)
                    .crash(1, 1)
                    .build(),
            )
            .retry(RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            })
            .build()
    };
    let faultless = mix(ServiceConfig::builder()
        .workers(4)
        .scheduler(SchedulerKind::WorkStealing)
        .store_shards(4)
        .chunk_tasks(16)
        .build())
    .0;
    let (results, report) = mix(config());
    let failed: Vec<_> = results
        .iter()
        .filter(|r| matches!(r.terminal, Terminal::Failed(_)))
        .collect();
    assert!(
        !failed.is_empty(),
        "the seed must doom at least one sibling: {:?}",
        results
            .iter()
            .map(|r| r.terminal.name())
            .collect::<Vec<_>>()
    );
    for r in &results {
        if !matches!(r.terminal, Terminal::Failed(_)) {
            let want = &faultless[r.id as usize];
            assert_eq!(
                surface(r),
                surface(want),
                "surviving query {} must not feel its siblings' failures or the crash",
                r.id
            );
        }
    }
    // Same seed, same weights, same crash → same report, line for line.
    let (replay, replay_report) = mix(config());
    for (a, b) in results.iter().zip(&replay) {
        assert_eq!(surface(a), surface(b), "replay diverged on query {}", a.id);
    }
    assert_eq!(report, replay_report, "deterministic report must replay");
}
