//! Feedback-driven re-planning at the serving layer.
//!
//! With `feedback_replanning` on, an exhaustively completed query
//! records its observed per-instruction cardinalities against the plan
//! cache's canonical key; the next submission of the same pattern class
//! is recompiled with the feedback estimator. These tests pin the
//! contract: counts never change, re-planning happens exactly once per
//! class, and a sequential submit–wait–submit sequence is
//! byte-deterministic.

use benu_graph::gen;
use benu_obs::ReportMode;
use benu_pattern::queries;
use benu_service::{QueryOptions, QueryResult, QueryService, ResultMode, ServiceConfig, Terminal};

fn config(feedback: bool) -> ServiceConfig {
    ServiceConfig::builder()
        .workers(2)
        .chunk_tasks(16)
        .feedback_replanning(feedback)
        .build()
}

/// The deterministic surface of a result (wall time and completion
/// order excluded).
fn surface(r: &QueryResult) -> impl PartialEq + std::fmt::Debug {
    (
        r.terminal.clone(),
        r.matches_found,
        r.matches.clone(),
        r.chunks_committed,
        r.exhaustive,
    )
}

#[test]
fn repeat_queries_replan_once_and_preserve_counts() {
    let g = gen::barabasi_albert(200, 4, 11);
    let service = QueryService::new(&g, config(true));
    let opts = || QueryOptions::new().mode(ResultMode::Collect);

    let cold = service.wait(service.submit(&queries::q1(), opts()));
    assert_eq!(cold.terminal, Terminal::Completed);
    assert!(cold.exhaustive);
    assert_eq!(service.feedback_replans(), 0, "nothing to learn from yet");

    // The repeat submission is re-planned from the cold run's stats.
    let warm = service.wait(service.submit(&queries::q1(), opts()));
    assert_eq!(service.feedback_replans(), 1);
    assert_eq!(warm.terminal, Terminal::Completed);
    assert_eq!(warm.matches_found, cold.matches_found);
    // The re-planned matching order may enumerate in a different stream
    // order; the embedding *set* must be identical.
    let (mut c, mut w) = (cold.matches.clone(), warm.matches.clone());
    c.sort_unstable();
    w.sort_unstable();
    assert_eq!(w, c, "same embeddings, order aside");

    // A relabeled pattern of the same class rides the replanned entry —
    // no second recompilation.
    let relabeled = benu_pattern::Pattern::from_edges(4, &[(3, 2), (2, 0), (0, 1), (1, 3), (3, 0)]);
    let iso = queries::q1().canonical_form().pattern == relabeled.canonical_form().pattern;
    if iso {
        let again = service.wait(service.submit(&relabeled, opts()));
        assert_eq!(service.feedback_replans(), 1, "one re-plan per class");
        assert_eq!(again.matches_found, cold.matches_found);
    }

    // An unrelated class learns independently.
    let tri = service.wait(service.submit(&queries::triangle(), opts()));
    assert_eq!(tri.terminal, Terminal::Completed);
    let tri2 = service.wait(service.submit(&queries::triangle(), opts()));
    assert_eq!(service.feedback_replans(), 2);
    assert_eq!(tri2.matches_found, tri.matches_found);
}

#[test]
fn sequential_replanning_is_byte_deterministic() {
    let g = gen::barabasi_albert(180, 4, 3);
    let run = || {
        let service = QueryService::new(&g, config(true));
        let mut results = Vec::new();
        for _ in 0..3 {
            let id = service.submit(
                &queries::triangle(),
                QueryOptions::new().mode(ResultMode::Collect),
            );
            results.push(service.wait(id));
        }
        let replans = service.feedback_replans();
        let report = service.report(ReportMode::Deterministic);
        (results, replans, report)
    };
    let (a, ra, report_a) = run();
    let (b, rb, report_b) = run();
    assert_eq!(ra, rb);
    assert_eq!(ra, 1, "first repeat re-plans, later repeats reuse");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(surface(x), surface(y));
    }
    assert_eq!(report_a, report_b, "deterministic reports must match");
}

#[test]
fn replanning_off_by_default_records_nothing() {
    let g = gen::barabasi_albert(120, 3, 5);
    let service = QueryService::new(&g, config(false));
    for _ in 0..3 {
        let id = service.submit(&queries::triangle(), QueryOptions::new());
        let r = service.wait(id);
        assert_eq!(r.terminal, Terminal::Completed);
    }
    assert_eq!(service.feedback_replans(), 0);
}

#[test]
fn truncated_queries_do_not_pollute_the_stats_store() {
    // A deadline-truncated run observes only a prefix of the work; it
    // must not feed the estimator. Submit truncated runs first, then a
    // complete one, then a repeat: exactly one re-plan, driven by the
    // complete observation alone.
    let g = gen::barabasi_albert(200, 4, 19);
    let service = QueryService::new(&g, config(true));
    let cut = service.wait(service.submit(&queries::q1(), QueryOptions::new().deadline_vticks(50)));
    assert_ne!(cut.terminal, Terminal::Completed, "deadline must bite");
    let full = service.wait(service.submit(&queries::q1(), QueryOptions::new()));
    assert_eq!(full.terminal, Terminal::Completed);
    assert_eq!(
        service.feedback_replans(),
        0,
        "the full run after truncations compiles from the cold cache"
    );
    let repeat = service.wait(service.submit(&queries::q1(), QueryOptions::new()));
    assert_eq!(service.feedback_replans(), 1);
    assert_eq!(repeat.matches_found, full.matches_found);
}
