//! Satellite: batch-boundary fairness across queries.
//!
//! The regression this suite pins: a worker that is mid-stream on a
//! long query must yield to a newly admitted query at the next chunk
//! boundary — one bounded batch of tasks, not "whenever the first query
//! drains". With one worker the grant order is fully deterministic, so
//! the tests assert completion order outright.

use benu_graph::gen;
use benu_pattern::queries;
use benu_service::{QueryOptions, QueryService, ResultMode, ServiceConfig, Terminal};

#[test]
fn short_query_finishes_before_a_long_head_of_line_query() {
    // One worker, 4-task chunks: the clique query alone holds dozens of
    // chunks. The later-submitted triangle TopK(3) needs only a few
    // grants, so round-robin interleaving must complete it first —
    // head-of-line blocking would force it to wait for every clique
    // chunk.
    let g = gen::barabasi_albert(300, 6, 5);
    let service = QueryService::new(
        &g,
        ServiceConfig::builder().workers(1).chunk_tasks(4).build(),
    );
    let long = service.submit(
        &queries::clique(4),
        QueryOptions::new().mode(ResultMode::Collect),
    );
    let short = service.submit(
        &queries::triangle(),
        QueryOptions::new().mode(ResultMode::TopK(3)),
    );
    let s = service.wait(short);
    let l = service.wait(long);
    assert_eq!(s.terminal, Terminal::Completed);
    assert_eq!(s.matches.len(), 3);
    assert_eq!(l.terminal, Terminal::Completed);
    assert!(
        s.completion_index < l.completion_index,
        "the short query must not wait behind the long one \
         (short finished #{}, long #{})",
        s.completion_index,
        l.completion_index
    );
}

#[test]
fn weights_shift_the_interleaving() {
    // Two identical heavy queries, but B carries weight 8: per
    // round-robin round B commits eight chunks to A's one, so B
    // finishes well before A even though A was admitted first and got a
    // brief solo head start while B was being submitted. (One worker
    // keeps grant order deterministic; the clique enumeration is heavy
    // enough that the head start is a few chunks out of dozens.)
    let g = gen::barabasi_albert(250, 5, 9);
    let service = QueryService::new(
        &g,
        ServiceConfig::builder().workers(1).chunk_tasks(4).build(),
    );
    let a = service.submit(&queries::clique(4), QueryOptions::new());
    let b = service.submit(&queries::clique(4), QueryOptions::new().weight(8));
    let ra = service.wait(a);
    let rb = service.wait(b);
    assert_eq!(ra.matches_found, rb.matches_found, "same query, same count");
    assert!(
        rb.completion_index < ra.completion_index,
        "the weighted query must overtake (A #{}, B #{})",
        ra.completion_index,
        rb.completion_index
    );
}

#[test]
fn many_interleaved_queries_all_complete_with_exact_counts() {
    // Fairness must never trade correctness: a pile of queries admitted
    // back-to-back on few workers all complete with the solo count.
    let g = gen::barabasi_albert(200, 5, 3);
    let plan = benu_plan::PlanBuilder::new(&queries::triangle()).best_plan();
    let expected = benu_engine::count_embeddings(&plan, &g);
    let service = QueryService::new(
        &g,
        ServiceConfig::builder().workers(2).chunk_tasks(8).build(),
    );
    let ids: Vec<_> = (0..8)
        .map(|_| service.submit(&queries::triangle(), QueryOptions::new()))
        .collect();
    for id in ids {
        let r = service.wait(id);
        assert_eq!(r.terminal, Terminal::Completed);
        assert_eq!(r.matches_found, expected);
    }
}
