//! Satellite: cancellation and deadline soundness.
//!
//! Terminating a query early — by `cancel`, a virtual-time deadline, or
//! a match cap — must release its queued chunks promptly, leave sibling
//! queries bit-exact, and always land on a structured terminal status:
//! a partial count is only ever reported *as* partial.

use benu_graph::gen;
use benu_pattern::queries;
use benu_service::{QueryOptions, QueryService, ServiceConfig, Terminal};

fn heavy_graph() -> benu_graph::Graph {
    gen::barabasi_albert(400, 6, 21)
}

fn service(workers: usize) -> QueryService {
    QueryService::new(
        &heavy_graph(),
        ServiceConfig::builder()
            .workers(workers)
            .chunk_tasks(8)
            .build(),
    )
}

#[test]
fn zero_deadline_commits_nothing() {
    // Deadline 0 is already expired at the first (pre-commit) boundary
    // check, so not one chunk commits — deterministically, at any
    // concurrency.
    for workers in [1, 4] {
        let service = service(workers);
        let id = service.submit(&queries::clique(4), QueryOptions::new().deadline_vticks(0));
        let r = service.wait(id);
        assert_eq!(r.terminal, Terminal::DeadlineExceeded);
        assert!(r.is_partial());
        assert_eq!(r.matches_found, 0);
        assert_eq!(r.vticks, 0);
        assert_eq!(r.chunks_committed, 0);
        assert!(r.chunks_discarded > 0, "all chunks released");
        assert!(!r.exhaustive);
    }
}

#[test]
fn deadline_partial_leaves_sibling_exact() {
    let g = heavy_graph();
    let plan = benu_plan::PlanBuilder::new(&queries::triangle()).best_plan();
    let expected = benu_engine::count_embeddings(&plan, &g);

    let service = QueryService::new(
        &g,
        ServiceConfig::builder().workers(4).chunk_tasks(8).build(),
    );
    let budgeted = service.submit(
        &queries::clique(4),
        QueryOptions::new().deadline_vticks(5_000),
    );
    let sibling = service.submit(&queries::triangle(), QueryOptions::new());

    let b = service.wait(budgeted);
    assert_eq!(b.terminal, Terminal::DeadlineExceeded);
    assert!(b.is_partial(), "deadline partials must say so");
    assert!(b.chunks_discarded > 0, "the deadline released queued work");

    let s = service.wait(sibling);
    assert_eq!(s.terminal, Terminal::Completed);
    assert!(s.exhaustive);
    assert_eq!(
        s.matches_found, expected,
        "a sibling's count must not be corrupted by the budgeted query's termination"
    );
}

#[test]
fn cancel_releases_queued_chunks() {
    // One worker and a tiny chunk size: the clique query holds many
    // queued chunks when cancel lands, so the drain path must release
    // them and account every one as discarded.
    let service = service(1);
    let id = service.submit(&queries::clique(4), QueryOptions::new());
    assert!(service.cancel(id), "first cancel wins");
    let r = service.wait(id);
    assert_eq!(r.terminal, Terminal::Cancelled);
    assert!(r.is_partial());
    assert!(r.chunks_discarded > 0, "queued chunks were released");
    assert!(!r.exhaustive);
    assert!(
        !service.cancel(id),
        "cancelling a finished query is a no-op"
    );
    // The released capacity is actually usable: a follow-up query runs
    // to completion on the same workers.
    let follow = service.submit(&queries::triangle(), QueryOptions::new());
    let f = service.wait(follow);
    assert_eq!(f.terminal, Terminal::Completed);
    assert!(f.exhaustive);
}

#[test]
fn max_matches_clamps_and_reports_partial() {
    let service = service(2);
    let id = service.submit(&queries::triangle(), QueryOptions::new().max_matches(50));
    let r = service.wait(id);
    assert_eq!(r.terminal, Terminal::MaxMatchesReached);
    assert_eq!(r.matches_found, 50, "the count clamps exactly at the cap");
    assert!(r.is_partial());
    assert!(!r.exhaustive);
}

#[test]
fn cancel_unknown_query_is_refused() {
    let service = service(1);
    assert!(!service.cancel(999));
}

#[test]
fn every_admission_reaches_a_terminal_under_churn() {
    // Cancellation storms must never wedge the service: submit a wave,
    // cancel every other query immediately, and require a structured
    // terminal for all of them.
    let service = service(3);
    let ids: Vec<_> = (0..10)
        .map(|i| {
            let id = service.submit(&queries::triangle(), QueryOptions::new());
            if i % 2 == 0 {
                service.cancel(id);
            }
            id
        })
        .collect();
    for id in ids {
        let r = service.wait(id);
        match r.terminal {
            Terminal::Completed => assert!(r.exhaustive),
            Terminal::Cancelled => assert!(r.is_partial()),
            other => panic!("unexpected terminal {other:?}"),
        }
        assert!(
            r.chunks_committed + r.chunks_discarded > 0,
            "every chunk must be accounted for"
        );
    }
}
