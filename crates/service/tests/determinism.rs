//! Satellite: the service determinism guard.
//!
//! The same seed and query mix must produce identical per-query results
//! — terminal status, match count, committed match stream, virtual-time
//! latency — and an identical deterministic report at every concurrency
//! level, under both schedulers, and across both execution modes. This
//! is the serving-layer extension of the cluster's
//! `hybrid_equivalence` suite: budgets and result modes are enforced at
//! deterministic chunk-commit boundaries, so even *truncating* queries
//! (deadlines, match caps, TopK) cut the stream at the same point
//! everywhere.

use benu_cluster::{ExecMode, SchedulerKind};
use benu_graph::gen;
use benu_obs::ReportMode;
use benu_pattern::queries;
use benu_service::{QueryOptions, QueryResult, QueryService, ResultMode, ServiceConfig, Terminal};

/// The comparable surface of a result: everything except wall time and
/// completion order (which legitimately depend on worker timing).
fn surface(r: &QueryResult) -> impl PartialEq + std::fmt::Debug {
    (
        r.id,
        r.terminal.clone(),
        r.matches_found,
        r.matches.clone(),
        r.vticks,
        r.chunks_committed,
        r.chunks_discarded,
        r.plan_cache_hit,
        r.exhaustive,
        r.metrics,
    )
}

/// Submits the fixed mix and waits for every query, in id order.
fn run_mix(config: ServiceConfig) -> (Vec<QueryResult>, benu_obs::Report) {
    let g = gen::barabasi_albert(150, 4, 7);
    let service = QueryService::new(&g, config);
    let ids = vec![
        service.submit(&queries::triangle(), QueryOptions::new()),
        service.submit(
            &queries::q1(),
            QueryOptions::new().mode(ResultMode::Collect),
        ),
        // Budgeted queries: every truncation mode is in the mix.
        service.submit(&queries::triangle(), QueryOptions::new().max_matches(100)),
        service.submit(&queries::q1(), QueryOptions::new().deadline_vticks(2_000)),
        service.submit(
            &queries::triangle(),
            QueryOptions::new().mode(ResultMode::TopK(7)),
        ),
        service.submit(
            &queries::q2(),
            QueryOptions::new().mode(ResultMode::Sample { n: 5, seed: 42 }),
        ),
        // A relabeled triangle — plan-cache hit, same results.
        service.submit(
            &benu_pattern::Pattern::from_edges(3, &[(2, 1), (1, 0), (0, 2)]),
            QueryOptions::new().mode(ResultMode::Collect),
        ),
    ];
    let results: Vec<QueryResult> = ids.into_iter().map(|id| service.wait(id)).collect();
    let report = service.report(ReportMode::Deterministic);
    (results, report)
}

#[test]
fn results_are_identical_across_concurrency_schedulers_and_modes() {
    let base = ServiceConfig::builder().chunk_tasks(16);
    let mut baseline: Option<(Vec<QueryResult>, benu_obs::Report)> = None;
    for workers in [1, 3] {
        for scheduler in [SchedulerKind::Static, SchedulerKind::WorkStealing] {
            for exec_mode in [ExecMode::Dfs, ExecMode::Hybrid] {
                let config = base
                    .clone()
                    .workers(workers)
                    .scheduler(scheduler)
                    .exec_mode(exec_mode)
                    .build();
                let (results, report) = run_mix(config);
                match &baseline {
                    None => baseline = Some((results, report)),
                    Some((expect_results, expect_report)) => {
                        for (got, want) in results.iter().zip(expect_results) {
                            assert_eq!(
                                surface(got),
                                surface(want),
                                "query {} diverged at workers={workers} {scheduler} {exec_mode:?}",
                                got.id
                            );
                        }
                        assert_eq!(
                            &report, expect_report,
                            "deterministic report diverged at workers={workers} \
                             {scheduler} {exec_mode:?}"
                        );
                    }
                }
            }
        }
    }
    let (results, _) = baseline.expect("at least one configuration ran");
    // The mix exercised every terminal class.
    assert_eq!(results[0].terminal, Terminal::Completed);
    assert!(results[0].exhaustive);
    assert_eq!(results[2].terminal, Terminal::MaxMatchesReached);
    assert_eq!(results[2].matches_found, 100, "count clamps at the cap");
    assert_eq!(results[3].terminal, Terminal::DeadlineExceeded);
    assert!(results[3].chunks_discarded > 0, "the deadline must bite");
    assert_eq!(results[4].terminal, Terminal::Completed);
    assert_eq!(results[4].matches.len(), 7);
    assert!(!results[4].exhaustive, "TopK completes without exhausting");
    assert_eq!(results[5].matches.len(), 5, "reservoir filled");
    assert!(results[6].plan_cache_hit, "relabeled pattern must hit");
}

#[test]
fn results_are_identical_across_wire_codecs() {
    // The codec changes how adjacency values travel, never what they
    // decode to — the whole query mix (including truncating modes, which
    // cut the stream at chunk boundaries) must be byte-identical across
    // codecs. Wire statistics legitimately differ and are excluded.
    let mix = |codec| {
        run_mix(
            ServiceConfig::builder()
                .workers(2)
                .chunk_tasks(16)
                .codec(codec)
                .build(),
        )
        .0
    };
    let raw = mix(benu_cluster::CodecKind::RawU32);
    let delta = mix(benu_cluster::CodecKind::DeltaVarint);
    for (got, want) in delta.iter().zip(&raw) {
        assert_eq!(
            surface(got),
            surface(want),
            "query {} diverged across codecs",
            got.id
        );
    }
}

#[test]
fn unbudgeted_counts_match_the_sequential_engine() {
    let g = gen::barabasi_albert(120, 4, 11);
    let service = QueryService::new(
        &g,
        ServiceConfig::builder().workers(3).chunk_tasks(16).build(),
    );
    for pattern in [queries::triangle(), queries::q1(), queries::square()] {
        let plan = benu_plan::PlanBuilder::new(&pattern).best_plan();
        let expected = benu_engine::count_embeddings(&plan, &g);
        let id = service.submit(&pattern, QueryOptions::new());
        let result = service.wait(id);
        assert_eq!(result.matches_found, expected);
        assert!(result.exhaustive);
    }
}

#[test]
fn collected_streams_are_sorted_and_complete() {
    // The committed match stream is chunk-ordered with sorted chunks of
    // submitted-numbering embeddings; for a full run over the whole
    // graph that equals the sequential engine's sorted embedding list.
    let g = gen::erdos_renyi_gnm(60, 220, 3);
    let service = QueryService::new(
        &g,
        ServiceConfig::builder().workers(2).chunk_tasks(8).build(),
    );
    let pattern = queries::triangle();
    let plan = benu_plan::PlanBuilder::new(&pattern).best_plan();
    let mut expected = benu_engine::collect_embeddings(&plan, &g);
    expected.sort_unstable();
    let id = service.submit(&pattern, QueryOptions::new().mode(ResultMode::Collect));
    let mut got = service.wait(id).matches;
    got.sort_unstable();
    assert_eq!(got, expected);
}
