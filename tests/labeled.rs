//! Integration tests of the property-graph (vertex-label) extension —
//! the second future-work item of the paper's §VIII.

use benu::engine::reference;
use benu::graph::gen;
use benu::pattern::automorphism::automorphism_count;
use benu::pattern::{queries, Pattern};
use benu::plan::PlanBuilder;
use rand::{Rng, SeedableRng};

/// Deterministic labels in `0..k` for every vertex.
fn labels(n: usize, k: u32, seed: u64) -> Vec<u32> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..k)).collect()
}

#[test]
fn labeled_engine_agrees_with_labeled_reference() {
    let g = gen::erdos_renyi_gnm(40, 160, 3);
    let data_labels = labels(g.num_vertices(), 3, 7);
    for (name, base) in queries::evaluation_queries() {
        let n = base.num_vertices();
        let p = base.with_labels((0..n as u32).map(|i| i % 3).collect());
        let expected = reference::count_subgraphs_labeled(&g, &p, &data_labels);
        let plan = PlanBuilder::new(&p).compressed(true).best_plan();
        let got = benu::engine::count_labeled_embeddings(&plan, &g, &data_labels);
        assert_eq!(got, expected, "{name} labeled");
    }
}

#[test]
fn uniform_labels_reproduce_unlabeled_counts() {
    let g = gen::barabasi_albert(60, 3, 5);
    let data_labels = vec![0u32; g.num_vertices()];
    for (name, base) in [("triangle", queries::triangle()), ("q1", queries::q1())] {
        let unlabeled_plan = PlanBuilder::new(&base).best_plan();
        let expected = benu::engine::count_embeddings(&unlabeled_plan, &g);
        let n = base.num_vertices();
        let p = base.with_labels(vec![0; n]);
        let plan = PlanBuilder::new(&p).best_plan();
        let got = benu::engine::count_labeled_embeddings(&plan, &g, &data_labels);
        assert_eq!(got, expected, "{name}: uniform labels must be a no-op");
    }
}

#[test]
fn labels_shrink_the_automorphism_group() {
    // An unlabeled triangle has |Aut| = 6; colouring one corner
    // differently leaves only the swap of the two same-coloured corners.
    let tri = queries::triangle().with_labels(vec![1, 0, 0]);
    assert_eq!(automorphism_count(&tri), 2);
    // All distinct: rigid.
    let rigid = queries::triangle().with_labels(vec![0, 1, 2]);
    assert_eq!(automorphism_count(&rigid), 1);
}

#[test]
fn labeled_symmetry_breaking_still_deduplicates() {
    // A bipartite-labeled square: corners alternate labels; symmetry
    // breaking on the labeled pattern must still report each labeled
    // subgraph exactly once (engine vs brute force).
    let g = gen::erdos_renyi_gnm(30, 120, 9);
    let data_labels = labels(g.num_vertices(), 2, 4);
    let p = queries::square().with_labels(vec![0, 1, 0, 1]);
    let expected = reference::count_subgraphs_labeled(&g, &p, &data_labels);
    let plan = PlanBuilder::new(&p).best_plan();
    assert_eq!(
        benu::engine::count_labeled_embeddings(&plan, &g, &data_labels),
        expected
    );
}

#[test]
fn heterogeneous_motif_example_two_colored_wedge() {
    // A "user–item–user" wedge: centre labeled 1, endpoints labeled 0.
    let p = Pattern::from_edges(3, &[(0, 1), (0, 2)]).with_labels(vec![1, 0, 0]);
    // Star data graph: centre 0 (label 1), leaves labeled 0.
    let g = gen::star(5);
    let mut data_labels = vec![0u32; g.num_vertices()];
    data_labels[0] = 1;
    let plan = PlanBuilder::new(&p).best_plan();
    // C(5, 2) = 10 wedges.
    assert_eq!(
        benu::engine::count_labeled_embeddings(&plan, &g, &data_labels),
        10
    );
    // Flipping the pattern's centre label kills every match.
    let p2 = Pattern::from_edges(3, &[(0, 1), (0, 2)]).with_labels(vec![0, 1, 1]);
    let plan2 = PlanBuilder::new(&p2).best_plan();
    assert_eq!(
        benu::engine::count_labeled_embeddings(&plan2, &g, &data_labels),
        0
    );
}
