//! Edge-case behaviour across the stack: degenerate graphs, patterns
//! larger than the data graph, isolated vertices, empty candidate
//! spaces, and split interactions.

use benu::engine;
use benu::graph::{gen, Graph, GraphBuilder};
use benu::pattern::queries;
use benu::plan::PlanBuilder;
use benu::prelude::*;

#[test]
fn pattern_larger_than_graph_yields_zero() {
    let g = gen::complete(3);
    let plan = PlanBuilder::new(&queries::clique(5)).best_plan();
    assert_eq!(engine::count_embeddings(&plan, &g), 0);
}

#[test]
fn edgeless_graph_yields_zero_for_any_pattern() {
    let mut b = GraphBuilder::new();
    b.reserve_vertices(10);
    let g = b.build();
    for (name, p) in queries::evaluation_queries() {
        let plan = PlanBuilder::new(&p).best_plan();
        assert_eq!(engine::count_embeddings(&plan, &g), 0, "{name}");
    }
}

#[test]
fn isolated_vertices_do_not_affect_counts() {
    let base = gen::complete(5);
    let mut padded = GraphBuilder::new();
    for (u, v) in base.edges() {
        padded.add_edge(u, v);
    }
    padded.reserve_vertices(50); // 45 isolated vertices
    let padded = padded.build();
    let plan = PlanBuilder::new(&queries::triangle()).best_plan();
    assert_eq!(
        engine::count_embeddings(&plan, &base),
        engine::count_embeddings(&plan, &padded)
    );
}

#[test]
fn single_edge_pattern_counts_edges() {
    let g = gen::erdos_renyi_gnm(50, 170, 12);
    let p = benu::pattern::Pattern::from_edges(2, &[(0, 1)]);
    let plan = PlanBuilder::new(&p).best_plan();
    // Symmetry breaking halves the 2M ordered maps: one match per edge.
    assert_eq!(engine::count_embeddings(&plan, &g), g.num_edges() as u64);
}

#[test]
fn star_pattern_with_non_adjacent_second_vertex_splits_correctly() {
    // Force a matching order whose second vertex is NOT adjacent to the
    // first: candidates come from V(G) and splitting divides by |V(G)|.
    let g = gen::barabasi_albert(60, 3, 21);
    let p = queries::path(3); // 0-1-2
    let plan = PlanBuilder::new(&p).matching_order(vec![0, 2, 1]).build();
    let expected = engine::count_embeddings(&plan, &g);
    let cluster = Cluster::new(
        &g,
        ClusterConfig::builder()
            .workers(2)
            .threads_per_worker(2)
            .tau(7)
            .build(),
    );
    let outcome = cluster.run(&plan).unwrap();
    assert_eq!(outcome.total_matches, expected);
    assert!(
        outcome.total_tasks > g.num_vertices(),
        "non-adjacent second vertex splits hubs by |V(G)| / tau"
    );
}

#[test]
fn self_loops_in_input_are_ignored_end_to_end() {
    let g = Graph::from_edges([(0, 0), (0, 1), (1, 2), (2, 0), (2, 2)]);
    let plan = PlanBuilder::new(&queries::triangle()).best_plan();
    assert_eq!(engine::count_embeddings(&plan, &g), 1);
}

#[test]
fn two_vertex_graph_hosts_no_triangle_but_one_edge() {
    let g = Graph::from_edges([(0, 1)]);
    let tri = PlanBuilder::new(&queries::triangle()).best_plan();
    assert_eq!(engine::count_embeddings(&tri, &g), 0);
    let edge = benu::pattern::Pattern::from_edges(2, &[(0, 1)]);
    let plan = PlanBuilder::new(&edge).best_plan();
    assert_eq!(engine::count_embeddings(&plan, &g), 1);
}

#[test]
fn cluster_on_tiny_graph_with_many_workers() {
    // More workers than vertices: empty task queues must be fine.
    let g = gen::complete(3);
    let cluster = Cluster::new(
        &g,
        ClusterConfig::builder()
            .workers(8)
            .threads_per_worker(2)
            .build(),
    );
    let plan = PlanBuilder::new(&queries::triangle()).best_plan();
    let outcome = cluster.run(&plan).unwrap();
    assert_eq!(outcome.total_matches, 1);
    assert_eq!(outcome.workers.len(), 8);
}

#[test]
fn compressed_plan_on_graph_without_matches_emits_no_codes() {
    let g = gen::grid(5, 5); // bipartite: no triangles
    let plan = PlanBuilder::new(&queries::q2())
        .compressed(true)
        .best_plan();
    let cluster = Cluster::new(&g, ClusterConfig::default());
    let outcome = cluster.run(&plan).unwrap();
    assert_eq!(outcome.total_matches, 0);
    assert_eq!(outcome.total_codes, 0);
    assert_eq!(outcome.metrics.code_bytes, 0);
}
