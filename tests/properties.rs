//! Property-based tests over random graphs and random patterns.
//!
//! The central invariants of the whole system:
//!
//! * every plan (any order, any optimization level, compressed or not)
//!   enumerates exactly the brute-force match set;
//! * symmetry breaking reports each subgraph exactly once
//!   (`raw matches = subgraphs × |Aut(P)|`);
//! * the intersection kernels agree with naive set semantics;
//! * task splitting partitions, never duplicates.

use benu::engine::reference;
use benu::graph::{gen, ops, Graph};
use benu::pattern::automorphism::automorphism_count;
use benu::pattern::{queries, Pattern, SymmetryBreaking};
use benu::plan::optimize::OptimizeOptions;
use benu::plan::PlanBuilder;
use proptest::prelude::*;

/// A random connected pattern with 3–6 vertices.
fn arb_pattern() -> impl Strategy<Value = Pattern> {
    (3usize..=6, 0usize..=4, 0u64..1000).prop_map(|(n, extra, seed)| {
        let g = gen::random_connected(n, extra, seed);
        let edges: Vec<(usize, usize)> =
            g.edges().map(|(a, b)| (a as usize, b as usize)).collect();
        Pattern::from_edges(n, &edges)
    })
}

/// A small random data graph.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (10usize..40, 0u64..1000, 1usize..4).prop_map(|(n, seed, density)| {
        let max_m = n * (n - 1) / 2;
        let m = (n * density * 2).min(max_m);
        gen::erdos_renyi_gnm(n, m, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_equals_reference_on_random_inputs(
        p in arb_pattern(),
        g in arb_graph(),
        compressed in any::<bool>(),
    ) {
        let expected = reference::count_subgraphs(&g, &p);
        let plan = PlanBuilder::new(&p).compressed(compressed).best_plan();
        let got = benu::engine::count_embeddings(&plan, &g);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn optimizations_never_change_the_match_multiset(
        p in arb_pattern(),
        g in arb_graph(),
        seed in 0u64..100,
    ) {
        // A pseudo-random (but valid) matching order derived from the seed.
        let n = p.num_vertices();
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = seed.wrapping_add(1);
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let raw = PlanBuilder::new(&p)
            .matching_order(order.clone())
            .optimizations(OptimizeOptions::none())
            .build();
        let opt = PlanBuilder::new(&p)
            .matching_order(order)
            .optimizations(OptimizeOptions::all())
            .build();
        prop_assert_eq!(
            benu::engine::collect_embeddings(&raw, &g),
            benu::engine::collect_embeddings(&opt, &g)
        );
    }

    #[test]
    fn symmetry_breaking_deduplicates_exactly(
        p in arb_pattern(),
        g in arb_graph(),
    ) {
        let with = reference::count(&g, &p, &SymmetryBreaking::compute(&p));
        let without = reference::count(&g, &p, &SymmetryBreaking::none());
        prop_assert_eq!(without, with * automorphism_count(&p) as u64);
    }

    #[test]
    fn intersection_kernels_match_naive(
        mut a in proptest::collection::vec(0u32..200, 0..60),
        mut b in proptest::collection::vec(0u32..200, 0..60),
    ) {
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        let naive: Vec<u32> = a.iter().filter(|x| b.contains(x)).copied().collect();
        let mut out = Vec::new();
        ops::merge_intersect_into(&a, &b, &mut out);
        prop_assert_eq!(&out, &naive);
        ops::gallop_intersect_into(&a, &b, &mut out);
        prop_assert_eq!(&out, &naive);
        ops::intersect_into(&a, &b, &mut out);
        prop_assert_eq!(&out, &naive);
        prop_assert_eq!(ops::intersect_count(&a, &b), naive.len());
    }

    #[test]
    fn split_tasks_partition_matches(
        g in arb_graph(),
        tau in 1usize..8,
    ) {
        use benu::engine::{task, CompiledPlan, CountingConsumer, InMemorySource, LocalEngine, SearchTask};
        let p = queries::triangle();
        let plan = PlanBuilder::new(&p).best_plan();
        let compiled = CompiledPlan::compile(&plan);
        let source = InMemorySource::from_graph(&g);
        let order = benu::graph::TotalOrder::new(&g);
        let mut engine = LocalEngine::new(&compiled, &source, &order);
        let mut c = CountingConsumer::default();

        let mut whole = 0u64;
        for v in g.vertices() {
            whole += engine.run_task(SearchTask::whole(v), &mut c).matches;
        }
        let mut split = 0u64;
        for t in task::generate_tasks(&g, tau, compiled.second_adjacent) {
            split += engine.run_task(t, &mut c).matches;
        }
        prop_assert_eq!(whole, split);
    }

    #[test]
    fn lru_cache_respects_budget_always(
        ops in proptest::collection::vec((0u32..50, 1u64..20), 1..200),
        capacity in 1u64..100,
    ) {
        let mut lru: benu::cache::lru::Lru<u32, u32> = benu::cache::lru::Lru::new(capacity);
        for (key, cost) in ops {
            lru.insert(key, key, cost);
            prop_assert!(lru.used_cost() <= capacity);
        }
    }
}
