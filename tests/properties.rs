//! Property-style tests over random graphs and random patterns.
//!
//! The central invariants of the whole system:
//!
//! * every plan (any order, any optimization level, compressed or not)
//!   enumerates exactly the brute-force match set;
//! * symmetry breaking reports each subgraph exactly once
//!   (`raw matches = subgraphs × |Aut(P)|`);
//! * the intersection kernels agree with naive set semantics;
//! * task splitting partitions, never duplicates.
//!
//! Each property runs over a fixed fan of seeds (deterministic, offline —
//! no proptest shrinking, so failures print the seed that produced them).

use benu::engine::reference;
use benu::graph::{gen, ops, Graph};
use benu::pattern::automorphism::automorphism_count;
use benu::pattern::{queries, Pattern, SymmetryBreaking};
use benu::plan::optimize::OptimizeOptions;
use benu::plan::PlanBuilder;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const CASES: u64 = 64;

/// A random connected pattern with 3–6 vertices.
fn sample_pattern(rng: &mut ChaCha8Rng) -> Pattern {
    let n = rng.gen_range(3usize..=6);
    let extra = rng.gen_range(0usize..=4);
    let seed = rng.gen_range(0u64..1000);
    let g = gen::random_connected(n, extra, seed);
    let edges: Vec<(usize, usize)> = g.edges().map(|(a, b)| (a as usize, b as usize)).collect();
    Pattern::from_edges(n, &edges)
}

/// A small random data graph.
fn sample_graph(rng: &mut ChaCha8Rng) -> Graph {
    let n = rng.gen_range(10usize..40);
    let seed = rng.gen_range(0u64..1000);
    let density = rng.gen_range(1usize..4);
    let max_m = n * (n - 1) / 2;
    let m = (n * density * 2).min(max_m);
    gen::erdos_renyi_gnm(n, m, seed)
}

#[test]
fn engine_equals_reference_on_random_inputs() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0xE0 + case);
        let p = sample_pattern(&mut rng);
        let g = sample_graph(&mut rng);
        let compressed = rng.gen::<bool>();
        let expected = reference::count_subgraphs(&g, &p);
        let plan = PlanBuilder::new(&p).compressed(compressed).best_plan();
        let got = benu::engine::count_embeddings(&plan, &g);
        assert_eq!(got, expected, "case {case} (compressed={compressed})");
    }
}

#[test]
fn optimizations_never_change_the_match_multiset() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x0F + case);
        let p = sample_pattern(&mut rng);
        let g = sample_graph(&mut rng);
        let seed = rng.gen_range(0u64..100);
        // A pseudo-random (but valid) matching order derived from the seed.
        let n = p.num_vertices();
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = seed.wrapping_add(1);
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let raw = PlanBuilder::new(&p)
            .matching_order(order.clone())
            .optimizations(OptimizeOptions::none())
            .build();
        let opt = PlanBuilder::new(&p)
            .matching_order(order)
            .optimizations(OptimizeOptions::all())
            .build();
        assert_eq!(
            benu::engine::collect_embeddings(&raw, &g),
            benu::engine::collect_embeddings(&opt, &g),
            "case {case}"
        );
    }
}

#[test]
fn symmetry_breaking_deduplicates_exactly() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5B + case);
        let p = sample_pattern(&mut rng);
        let g = sample_graph(&mut rng);
        let with = reference::count(&g, &p, &SymmetryBreaking::compute(&p));
        let without = reference::count(&g, &p, &SymmetryBreaking::none());
        assert_eq!(without, with * automorphism_count(&p) as u64, "case {case}");
    }
}

#[test]
fn intersection_kernels_match_naive() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x17 + case);
        let sample_set = |rng: &mut ChaCha8Rng| -> Vec<u32> {
            let len = rng.gen_range(0usize..60);
            let mut v: Vec<u32> = (0..len).map(|_| rng.gen_range(0u32..200)).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let a = sample_set(&mut rng);
        let b = sample_set(&mut rng);
        let naive: Vec<u32> = a.iter().filter(|x| b.contains(x)).copied().collect();
        let mut out = Vec::new();
        ops::merge_intersect_into(&a, &b, &mut out);
        assert_eq!(&out, &naive, "merge, case {case}");
        ops::gallop_intersect_into(&a, &b, &mut out);
        assert_eq!(&out, &naive, "gallop, case {case}");
        ops::intersect_into(&a, &b, &mut out);
        assert_eq!(&out, &naive, "adaptive, case {case}");
        assert_eq!(
            ops::intersect_count(&a, &b),
            naive.len(),
            "count, case {case}"
        );
    }
}

#[test]
fn split_tasks_partition_matches() {
    use benu::engine::{
        task, CompiledPlan, CountingConsumer, InMemorySource, LocalEngine, SearchTask,
    };
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x59 + case);
        let g = sample_graph(&mut rng);
        let tau = rng.gen_range(1usize..8);
        let p = queries::triangle();
        let plan = PlanBuilder::new(&p).best_plan();
        let compiled = CompiledPlan::compile(&plan);
        let source = InMemorySource::from_graph(&g);
        let order = benu::graph::TotalOrder::new(&g);
        let mut engine = LocalEngine::new(&compiled, &source, &order);
        let mut c = CountingConsumer::default();

        let mut whole = 0u64;
        for v in g.vertices() {
            whole += engine.run_task(SearchTask::whole(v), &mut c).matches;
        }
        let mut split = 0u64;
        for t in task::generate_tasks(&g, tau, compiled.second_adjacent) {
            split += engine.run_task(t, &mut c).matches;
        }
        assert_eq!(whole, split, "case {case} (tau={tau})");
    }
}

#[test]
fn lru_cache_respects_budget_always() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x14 + case);
        let capacity = rng.gen_range(1u64..100);
        let num_ops = rng.gen_range(1usize..200);
        let mut lru: benu::cache::lru::Lru<u32, u32> = benu::cache::lru::Lru::new(capacity);
        for _ in 0..num_ops {
            let key = rng.gen_range(0u32..50);
            let cost = rng.gen_range(1u64..20);
            lru.insert(key, key, cost);
            assert!(lru.used_cost() <= capacity, "case {case}");
        }
    }
}

#[test]
fn schedulers_agree_on_counts_and_communication() {
    // The scheduling policy may move tasks between workers but must never
    // change what is computed: identical match counts and — with the
    // database cache disabled, so placement cannot affect hit patterns —
    // identical total communication bytes on ER, BA and star graphs.
    use benu::cluster::{Cluster, ClusterConfig, SchedulerKind};

    let graphs: Vec<(&str, Graph)> = vec![
        ("er", gen::erdos_renyi_gnm(60, 240, 7)),
        ("ba", gen::barabasi_albert(60, 4, 7)),
        ("star", gen::star(60)),
    ];
    for (gname, g) in &graphs {
        for (qname, pattern) in [("triangle", queries::triangle()), ("q1", queries::q1())] {
            let plan = PlanBuilder::new(&pattern).best_plan();
            let run = |kind: SchedulerKind| {
                let cluster = Cluster::new(
                    g,
                    ClusterConfig::builder()
                        .workers(3)
                        .threads_per_worker(2)
                        .cache_capacity_bytes(0)
                        .tau(8)
                        .scheduler(kind)
                        .build(),
                );
                cluster.run(&plan).unwrap()
            };
            let stat = run(SchedulerKind::Static);
            let ws = run(SchedulerKind::WorkStealing);
            assert_eq!(
                stat.total_matches, ws.total_matches,
                "{gname}/{qname}: schedulers disagree on the count"
            );
            assert_eq!(
                stat.communication_bytes(),
                ws.communication_bytes(),
                "{gname}/{qname}: schedulers disagree on total bytes"
            );
            let executed: usize = ws.workers.iter().map(|w| w.tasks_executed).sum();
            assert_eq!(executed, ws.total_tasks, "{gname}/{qname}: tasks lost");
        }
    }
}
