//! End-to-end integration tests spanning every crate: the plan compiler,
//! the engine, the cluster runtime, both baselines and the brute-force
//! reference must all agree on match counts.

use benu::baselines::{starjoin, wcoj};
use benu::engine::reference;
use benu::graph::{gen, Graph};
use benu::pattern::queries;
use benu::plan::PlanBuilder;
use benu::prelude::*;

fn test_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("er", gen::erdos_renyi_gnm(60, 220, 5)),
        (
            "powerlaw",
            gen::chung_lu_power_law(gen::PowerLawConfig {
                n: 80,
                m: 320,
                gamma: 2.3,
                clustering: 0.4,
                seed: 11,
            }),
        ),
        ("ba", gen::barabasi_albert(70, 3, 2)),
        ("demo", Graph::from_edges(queries::demo_data_edges())),
    ]
}

#[test]
fn all_systems_agree_on_all_queries() {
    for (gname, g) in test_graphs() {
        let cluster = Cluster::new(
            &g,
            ClusterConfig::builder()
                .workers(3)
                .threads_per_worker(2)
                .cache_capacity_bytes(1 << 20)
                .tau(8)
                .build(),
        );
        for (qname, p) in queries::catalogue() {
            let expected = reference::count_subgraphs(&g, &p);

            let plan = PlanBuilder::new(&p)
                .graph_stats(g.num_vertices(), g.num_edges())
                .best_plan();
            let engine_count = benu::engine::count_embeddings(&plan, &g);
            assert_eq!(engine_count, expected, "{gname}/{qname}: engine");

            let compressed = PlanBuilder::new(&p).compressed(true).best_plan();
            let cluster_outcome = cluster.run(&compressed).unwrap();
            assert_eq!(
                cluster_outcome.total_matches, expected,
                "{gname}/{qname}: cluster (compressed)"
            );

            let join = starjoin::run(&g, &p, &starjoin::StarJoinConfig::default());
            assert!(join.completed, "{gname}/{qname}: star join crashed");
            assert_eq!(join.matches, expected, "{gname}/{qname}: star join");

            let wc = wcoj::run(&g, &p, &wcoj::WcojConfig::default());
            assert!(wc.completed, "{gname}/{qname}: wcoj oom");
            assert_eq!(wc.matches, expected, "{gname}/{qname}: wcoj");
        }
    }
}

#[test]
fn demo_graph_contains_the_papers_match() {
    // Fig. 1: f' = (v1, v2, v3, v4, v5, v8) — 0-based (0,1,2,3,4,7) — is a
    // match of the demo pattern in the demo data graph.
    let g = Graph::from_edges(queries::demo_data_edges());
    let p = queries::demo_pattern();
    let plan = PlanBuilder::new(&p).best_plan();
    let matches = benu::engine::collect_embeddings(&plan, &g);
    assert!(
        matches.contains(&vec![0, 1, 2, 3, 4, 7]),
        "paper match missing from {matches:?}"
    );
}

#[test]
fn forced_matching_orders_all_give_the_same_count() {
    // Every matching order must enumerate the same matches — only cost
    // differs (§III-B: plans are correct for any order).
    let g = gen::erdos_renyi_gnm(40, 150, 9);
    let p = queries::q1();
    let expected = reference::count_subgraphs(&g, &p);
    let orders: [[usize; 5]; 4] = [
        [0, 1, 2, 3, 4],
        [4, 3, 2, 1, 0],
        [2, 0, 4, 1, 3],
        [1, 4, 0, 3, 2],
    ];
    for order in orders {
        let plan = PlanBuilder::new(&p).matching_order(order.to_vec()).build();
        assert_eq!(
            benu::engine::count_embeddings(&plan, &g),
            expected,
            "order {order:?}"
        );
    }
}

#[test]
fn optimization_levels_preserve_semantics() {
    use benu::plan::optimize::OptimizeOptions;
    let g = gen::chung_lu_power_law(gen::PowerLawConfig {
        n: 50,
        m: 200,
        gamma: 2.2,
        clustering: 0.5,
        seed: 3,
    });
    let levels = [
        OptimizeOptions::none(),
        OptimizeOptions {
            cse: true,
            reorder: false,
            triangle_cache: false,
            clique_cache: false,
        },
        OptimizeOptions {
            cse: true,
            reorder: true,
            triangle_cache: false,
            clique_cache: false,
        },
        OptimizeOptions::all(),
    ];
    for (qname, p) in queries::evaluation_queries() {
        let expected = reference::count_subgraphs(&g, &p);
        for (i, opts) in levels.iter().enumerate() {
            let plan = PlanBuilder::new(&p).optimizations(*opts).build();
            assert_eq!(
                benu::engine::count_embeddings(&plan, &g),
                expected,
                "{qname} at optimization level {i}"
            );
        }
    }
}

#[test]
fn cluster_collects_the_reference_match_set() {
    let g = gen::erdos_renyi_gnm(35, 120, 31);
    let p = queries::q6();
    let sb = benu::pattern::SymmetryBreaking::compute(&p);
    let expected = reference::enumerate(&g, &p, &sb);
    let cluster = Cluster::new(
        &g,
        ClusterConfig::builder()
            .workers(2)
            .threads_per_worker(2)
            .build(),
    );
    let plan = PlanBuilder::new(&p).best_plan();
    let (_, matches) = cluster.run_collect(&plan).unwrap();
    assert_eq!(matches, expected);
}

#[test]
fn kv_store_round_trip_through_cluster() {
    // The cluster's store serves exactly the graph's adjacency sets.
    let g = gen::barabasi_albert(100, 3, 7);
    let cluster = Cluster::new(&g, ClusterConfig::builder().workers(4).build());
    for v in g.vertices() {
        let adj = cluster.store().get_unaccounted(v).unwrap();
        assert_eq!(adj.as_slice(), g.neighbors(v));
    }
    // Stored values are the raw adjacency payload behind a one-byte
    // codec tag (raw-u32 is the default), one tag per vertex.
    assert_eq!(
        cluster.store().total_value_bytes(),
        g.adjacency_bytes() + g.num_vertices()
    );
}

#[test]
fn match_counts_are_invariant_under_the_total_order() {
    // The total order ≺ only selects which representative match of each
    // subgraph survives symmetry breaking — the count is order-free.
    use benu::engine::{CompiledPlan, CountingConsumer, InMemorySource, LocalEngine};
    let g = gen::barabasi_albert(80, 3, 33);
    let source = InMemorySource::from_graph(&g);
    let orders = [
        benu::graph::TotalOrder::new(&g),
        benu::graph::TotalOrder::identity(g.num_vertices()),
        benu::graph::TotalOrder::degeneracy(&g),
    ];
    for (qname, p) in queries::evaluation_queries() {
        let plan = PlanBuilder::new(&p).best_plan();
        let compiled = CompiledPlan::compile(&plan);
        let counts: Vec<u64> = orders
            .iter()
            .map(|order| {
                let mut engine = LocalEngine::new(&compiled, &source, order);
                let mut c = CountingConsumer::default();
                engine.run_all_vertices(&mut c).matches
            })
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "{qname}: counts differ across total orders: {counts:?}"
        );
    }
}

#[test]
fn scalability_counts_stable_across_worker_counts() {
    let g = gen::barabasi_albert(200, 4, 19);
    let p = queries::q9();
    let plan = PlanBuilder::new(&p).compressed(true).best_plan();
    let mut counts = std::collections::HashSet::new();
    for workers in [1usize, 2, 4, 8] {
        let cluster = Cluster::new(
            &g,
            ClusterConfig::builder()
                .workers(workers)
                .threads_per_worker(2)
                .build(),
        );
        counts.insert(cluster.run(&plan).unwrap().total_matches);
    }
    assert_eq!(counts.len(), 1, "worker count changed results: {counts:?}");
}
