//! Paper-fidelity tests: every concrete claim the paper's text makes
//! about the running example (Fig. 1, Fig. 3, Fig. 4, Fig. 5) is asserted
//! against this implementation.

use benu::graph::{Graph, TotalOrder};
use benu::pattern::{queries, SymmetryBreaking};
use benu::plan::ir::InstrKind;
use benu::plan::optimize::OptimizeOptions;
use benu::plan::PlanBuilder;

fn demo_graph() -> Graph {
    Graph::from_edges(queries::demo_data_edges())
}

/// §II-A: "the candidate set C3 for u3 is {v | v ∈ Γ(v1) ∩ Γ(v2),
/// v ≠ v1, v ≠ v2} = {v3, v7}".
#[test]
fn candidate_set_example_from_section_2() {
    let g = demo_graph();
    let g1 = g.neighbors(0); // Γ(v1)
    let g2 = g.neighbors(1); // Γ(v2)
    let mut out = Vec::new();
    benu::graph::ops::intersect_into(g1, g2, &mut out);
    out.retain(|&v| v != 0 && v != 1);
    assert_eq!(out, vec![2, 6]); // v3 and v7
}

/// §II-A: both f' = (v1,v2,v3,v4,v5,v8) and f'' = (v1,v8,v5,v4,v3,v2)
/// are matches of P in G without symmetry breaking, but only f' survives
/// the partial order u3 < u5 (assuming v3 ≺ v5).
#[test]
fn duplicate_matches_and_symmetry_breaking() {
    let g = demo_graph();
    let p = queries::demo_pattern();
    let order = TotalOrder::new(&g);
    assert!(order.less(2, 4), "the demo graph must order v3 ≺ v5");

    let raw = benu::engine::reference::enumerate(&g, &p, &SymmetryBreaking::none());
    let f_prime = vec![0u32, 1, 2, 3, 4, 7];
    let f_double = vec![0u32, 7, 4, 3, 2, 1];
    assert!(raw.contains(&f_prime), "f' is a raw match");
    assert!(raw.contains(&f_double), "f'' is a raw match");

    let sb = SymmetryBreaking::compute(&p);
    let dedup = benu::engine::reference::enumerate(&g, &p, &sb);
    assert!(dedup.contains(&f_prime), "f' survives symmetry breaking");
    assert!(!dedup.contains(&f_double), "f'' is eliminated");
}

/// §IV-A: the raw plan for the running order has 18 instructions with
/// u4's as the 15th–17th; §IV-B Fig. 3c/3d/3e are pinned in the
/// `benu-plan` unit tests; here we assert the executable end result: all
/// four optimization stages enumerate identical matches on the demo
/// graph.
#[test]
fn fig3_pipeline_is_semantics_preserving_on_the_demo_graph() {
    let g = demo_graph();
    let p = queries::demo_pattern();
    let stages = [
        OptimizeOptions::none(),
        OptimizeOptions {
            cse: true,
            reorder: false,
            triangle_cache: false,
            clique_cache: false,
        },
        OptimizeOptions {
            cse: true,
            reorder: true,
            triangle_cache: false,
            clique_cache: false,
        },
        OptimizeOptions::all(),
        OptimizeOptions::all_with_clique_cache(),
    ];
    let mut results = Vec::new();
    for opts in stages {
        let plan = PlanBuilder::new(&p)
            .matching_order(vec![0, 2, 4, 1, 5, 3])
            .optimizations(opts)
            .build();
        results.push(benu::engine::collect_embeddings(&plan, &g));
    }
    for w in results.windows(2) {
        assert_eq!(w[0], w[1]);
    }
    assert!(results[0].contains(&vec![0, 1, 2, 3, 4, 7]));
}

/// §IV-A raw-plan shape claims.
#[test]
fn raw_plan_instruction_counts() {
    let p = queries::demo_pattern();
    let plan = PlanBuilder::new(&p)
        .matching_order(vec![0, 2, 4, 1, 5, 3])
        .optimizations(OptimizeOptions::none())
        .build();
    assert_eq!(plan.instructions.len(), 18);
    assert_eq!(plan.count_kind(InstrKind::Dbq), 3); // A1, A3, A5 only
    assert_eq!(plan.count_kind(InstrKind::Enu), 5);
    assert_eq!(plan.count_kind(InstrKind::Res), 1);
}

/// §V-A Fig. 5: the adjacency set of v4 is queried in the local search
/// tasks of both v1-started and other tasks — i.e. inter-task locality
/// exists: with a shared cache, the second task's query hits.
#[test]
fn inter_task_locality_on_the_demo_graph() {
    use benu::prelude::*;
    let g = demo_graph();
    let p = queries::demo_pattern();
    let plan = PlanBuilder::new(&p)
        .matching_order(vec![0, 2, 4, 1, 5, 3])
        .build();
    let cluster = Cluster::new(
        &g,
        ClusterConfig::builder()
            .workers(1)
            .threads_per_worker(1)
            .cache_capacity_bytes(1 << 20)
            .build(),
    );
    let outcome = cluster.run(&plan).unwrap();
    let w = &outcome.workers[0];
    assert!(
        w.cache.hits > 0,
        "repeated adjacency queries must hit the shared DB cache"
    );
    let expected = benu::engine::reference::count_subgraphs(&g, &p);
    assert_eq!(outcome.total_matches, expected);
}

/// Table III: all six instruction kinds appear across the demo pipeline.
#[test]
fn all_instruction_kinds_are_exercised() {
    let p = queries::demo_pattern();
    let plan = PlanBuilder::new(&p)
        .matching_order(vec![0, 2, 4, 1, 5, 3])
        .build();
    for kind in [
        InstrKind::Ini,
        InstrKind::Dbq,
        InstrKind::Int,
        InstrKind::Trc,
        InstrKind::Enu,
        InstrKind::Res,
    ] {
        assert!(plan.count_kind(kind) > 0, "missing {kind:?}");
    }
}
