//! Chaos property tests: fault injection must never change results.
//!
//! The acceptance invariant of the fault subsystem — with any seeded
//! [`FaultPlan`] the cluster survives (transient store faults retried,
//! a crashed worker's tasks requeued and re-executed on survivors), and
//! the match counts *and the collected match sets* are byte-identical to
//! a fault-free run. Exercised across graph families (Erdős–Rényi,
//! Barabási–Albert, star) and both schedulers, over a deterministic fan
//! of fault seeds.

use benu::cluster::{Cluster, ClusterConfig, SchedulerKind, WorkerError};
use benu::fault::{FaultPlan, RetryPolicy};
use benu::graph::{gen, Graph, VertexId};
use benu::pattern::queries;
use benu::plan::{ExecutionPlan, PlanBuilder};

const SEEDS: u64 = 8;

fn graph_families() -> Vec<(&'static str, Graph)> {
    vec![
        ("erdos-renyi", gen::erdos_renyi_gnm(60, 220, 7)),
        ("barabasi-albert", gen::barabasi_albert(80, 4, 3)),
        ("star", gen::star(50)),
    ]
}

fn config(kind: SchedulerKind) -> ClusterConfig {
    ClusterConfig::builder()
        .workers(3)
        .threads_per_worker(2)
        // A tiny cache keeps plenty of store traffic — fault sites —
        // while still exercising the cache layer under retries.
        .cache_capacity_bytes(1 << 12)
        .tau(16)
        .scheduler(kind)
        .build()
}

fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::builder(seed)
        .transient_rate(0.01)
        .timeout_rate(0.005)
        .crash(seed as usize % 3, 3) // one mid-run crash, rotating victim
        .build()
}

fn run_pair(
    g: &Graph,
    plan: &ExecutionPlan,
    kind: SchedulerKind,
    seed: u64,
) -> (
    (u64, Vec<Vec<VertexId>>),
    (u64, Vec<Vec<VertexId>>),
    benu::cluster::RecoveryReport,
) {
    let clean_cluster = Cluster::new(g, config(kind));
    let (clean, clean_matches) = clean_cluster.run_collect(plan).expect("fault-free run");

    let mut chaos_cluster = Cluster::new(g, config(kind));
    chaos_cluster.set_fault_plan(Some(chaos_plan(seed)));
    let (chaos, chaos_matches) = chaos_cluster
        .run_collect(plan)
        .expect("every injected fault must be survivable");
    (
        (clean.total_matches, clean_matches),
        (chaos.total_matches, chaos_matches),
        chaos.recovery,
    )
}

#[test]
fn faults_never_change_counts_or_matches() {
    let query = PlanBuilder::new(&queries::triangle()).best_plan();
    let mut total_faults = 0u64;
    let mut total_requeues = 0u64;
    for (family, g) in graph_families() {
        for kind in [SchedulerKind::Static, SchedulerKind::WorkStealing] {
            for seed in 0..SEEDS {
                let (clean, chaos, recovery) = run_pair(&g, &query, kind, seed);
                assert_eq!(
                    clean.0, chaos.0,
                    "{family}/{kind}/seed {seed}: count diverged under faults"
                );
                assert_eq!(
                    clean.1, chaos.1,
                    "{family}/{kind}/seed {seed}: match set diverged under faults"
                );
                total_faults += recovery.faults_injected();
                total_requeues += recovery.tasks_requeued;
            }
        }
    }
    // The property is vacuous if nothing was ever injected or recovered.
    assert!(total_faults > 0, "chaos plans must actually inject faults");
    assert!(total_requeues > 0, "at least one crash must requeue tasks");
}

#[test]
fn compressed_plans_survive_faults_identically() {
    let g = gen::barabasi_albert(70, 4, 11);
    let query = PlanBuilder::new(&queries::q4())
        .compressed(true)
        .best_plan();
    for seed in 0..SEEDS {
        let (clean, chaos, _) = run_pair(&g, &query, SchedulerKind::Static, seed);
        assert_eq!(clean.0, chaos.0, "seed {seed}: compressed count diverged");
        assert_eq!(clean.1, chaos.1, "seed {seed}: expanded matches diverged");
    }
}

#[test]
fn same_seed_replay_is_deterministic() {
    // Determinism scope: static scheduler, one thread per worker.
    let g = gen::erdos_renyi_gnm(50, 180, 13);
    let query = PlanBuilder::new(&queries::triangle()).best_plan();
    let run = || {
        let mut cluster = Cluster::new(
            &g,
            ClusterConfig::builder()
                .workers(3)
                .threads_per_worker(1)
                .cache_capacity_bytes(0)
                .build(),
        );
        cluster.set_fault_plan(Some(chaos_plan(4)));
        cluster.run(&query).expect("survivable plan")
    };
    let a = run();
    let b = run();
    assert_eq!(a.recovery, b.recovery, "replay must reproduce the report");
    assert_eq!(a.total_matches, b.total_matches);
    assert!(
        a.recovery.faults_injected() > 0,
        "the replay test must see faults"
    );
}

// ---- shard outages & replica failover ----

fn replicated_config(kind: SchedulerKind) -> ClusterConfig {
    ClusterConfig::builder()
        .workers(3)
        .threads_per_worker(2)
        .cache_capacity_bytes(1 << 12)
        .tau(16)
        .scheduler(kind)
        .replication(2)
        .build()
}

/// Runs `plan` clean and under `fault_plan` on an `R = 2` cluster and
/// asserts counts and collected matches are byte-identical.
fn assert_outage_exactness(
    g: &Graph,
    plan: &ExecutionPlan,
    kind: SchedulerKind,
    fault_plan: FaultPlan,
    label: &str,
) -> benu::cluster::RecoveryReport {
    let clean_cluster = Cluster::new(g, replicated_config(kind));
    let (clean, clean_matches) = clean_cluster.run_collect(plan).expect("fault-free run");
    let mut dark_cluster = Cluster::new(g, replicated_config(kind));
    dark_cluster.set_fault_plan(Some(fault_plan));
    let (dark, dark_matches) = dark_cluster
        .run_collect(plan)
        .expect("replication must absorb the outage");
    assert_eq!(
        clean.total_matches, dark.total_matches,
        "{label}: count diverged"
    );
    assert_eq!(clean_matches, dark_matches, "{label}: match set diverged");
    dark.recovery
}

#[test]
fn single_shard_outages_are_invisible_with_replication() {
    let query = PlanBuilder::new(&queries::triangle()).best_plan();
    for (family, g) in graph_families() {
        for kind in [SchedulerKind::Static, SchedulerKind::WorkStealing] {
            let recovery = assert_outage_exactness(
                &g,
                &query,
                kind,
                FaultPlan::builder(0).shard_outage(0, 1).build(),
                &format!("{family}/{kind}"),
            );
            assert_eq!(recovery.shard_outages, 1);
            assert!(
                recovery.failover_reads > 0,
                "{family}/{kind}: the mirror must have served reads"
            );
            assert_eq!(
                recovery.retries, 0,
                "{family}/{kind}: failover must not consume retry budget"
            );
        }
    }
}

#[test]
fn staggered_multi_shard_outages_keep_counts_exact() {
    // Shard 0 dark only during pass 1, shard 1 dark from pass 2 on; a
    // worker crash forces the recovery pass, so both windows are
    // actually exercised. The two outages never overlap, so every
    // placement group always has a live copy. Worker 0 is the crash
    // victim because it provably completes three tasks under both
    // schedulers (work stealing can drain the whole queue through it).
    let query = PlanBuilder::new(&queries::triangle()).best_plan();
    for (family, g) in graph_families() {
        for kind in [SchedulerKind::Static, SchedulerKind::WorkStealing] {
            let fault_plan = FaultPlan::builder(5)
                .shard_outage_window(0, 1, 2)
                .shard_outage(1, 2)
                .crash(0, 3)
                .build();
            let recovery = assert_outage_exactness(
                &g,
                &query,
                kind,
                fault_plan,
                &format!("{family}/{kind}/staggered"),
            );
            assert_eq!(recovery.worker_crashes, 1);
            assert!(recovery.recovery_passes >= 1, "the crash must force a pass");
            assert_eq!(
                recovery.shard_outages, 2,
                "both outage windows overlap executed passes"
            );
        }
    }
}

#[test]
fn outage_with_worker_crash_and_store_faults_combined() {
    // The full chaos menu at once: a dark shard (masked by failover), a
    // mid-run worker crash (absorbed by requeue) and background
    // transient faults (absorbed by retries) — counts must still be
    // byte-identical to the clean run.
    let query = PlanBuilder::new(&queries::triangle()).best_plan();
    for (family, g) in graph_families() {
        for kind in [SchedulerKind::Static, SchedulerKind::WorkStealing] {
            let fault_plan = FaultPlan::builder(21)
                .shard_outage(2, 1)
                .crash(0, 3)
                .transient_rate(0.01)
                .build();
            let recovery = assert_outage_exactness(
                &g,
                &query,
                kind,
                fault_plan,
                &format!("{family}/{kind}/combined"),
            );
            assert_eq!(recovery.worker_crashes, 1);
            assert!(recovery.failover_reads > 0);
        }
    }
}

#[test]
fn outage_replay_reproduces_the_failover_report() {
    // Determinism scope: static scheduler, one thread per worker.
    let g = gen::erdos_renyi_gnm(50, 180, 13);
    let query = PlanBuilder::new(&queries::triangle()).best_plan();
    let run = || {
        let mut cluster = Cluster::new(
            &g,
            ClusterConfig::builder()
                .workers(3)
                .threads_per_worker(1)
                .cache_capacity_bytes(0)
                .replication(2)
                .build(),
        );
        cluster.set_fault_plan(Some(
            FaultPlan::builder(4)
                .shard_outage(1, 1)
                .transient_rate(0.01)
                .crash(1, 3)
                .build(),
        ));
        cluster.run(&query).expect("survivable plan")
    };
    let a = run();
    let b = run();
    assert_eq!(a.recovery, b.recovery, "replay must reproduce the report");
    assert_eq!(a.total_matches, b.total_matches);
    assert!(a.recovery.failovers > 0, "the replay test must fail over");
    assert!(a.recovery.failover_reads > 0);
    assert_eq!(a.recovery.shard_outages, 1);
}

#[test]
fn unreplicated_outage_fails_fast_with_a_structured_error() {
    // The same outage that R = 2 shrugs off must abort a single-copy
    // cluster — fast (no retry budget burned) and typed, never an Ok
    // with a short count.
    let g = gen::erdos_renyi_gnm(40, 120, 1);
    let query = PlanBuilder::new(&queries::triangle()).best_plan();
    let mut cluster = Cluster::new(
        &g,
        ClusterConfig::builder()
            .workers(3)
            .threads_per_worker(1)
            .cache_capacity_bytes(0)
            .build(),
    );
    cluster.set_fault_plan(Some(FaultPlan::builder(0).shard_outage(0, 1).build()));
    match cluster.run(&query) {
        Err(WorkerError::StoreUnavailable { error, .. }) => {
            assert_eq!(error.attempts, 1, "outages must fail fast, not retry");
        }
        other => panic!("expected StoreUnavailable, got {other:?}"),
    }
}

#[test]
fn hopeless_outages_fail_instead_of_undercounting() {
    // When a fault plan outruns the retry policy, the run must error —
    // never return Ok with a silently short count.
    let g = gen::erdos_renyi_gnm(40, 120, 1);
    let query = PlanBuilder::new(&queries::triangle()).best_plan();
    let mut cluster = Cluster::new(
        &g,
        ClusterConfig::builder()
            .workers(2)
            .threads_per_worker(1)
            .cache_capacity_bytes(0)
            .retry(RetryPolicy {
                max_attempts: 1, // no retries at all
                ..RetryPolicy::default()
            })
            .build(),
    );
    cluster.set_fault_plan(Some(FaultPlan::builder(2).transient_rate(0.5).build()));
    match cluster.run(&query) {
        Err(WorkerError::StoreUnavailable { .. }) => {}
        other => panic!("expected StoreUnavailable, got {other:?}"),
    }
}
