//! Integration tests of VCBC compression: semantic equivalence, code
//! accounting, and the compression ratios the technique exists for.

use benu::engine::{CompiledPlan, CountingConsumer, InMemorySource, LocalEngine};
use benu::graph::{gen, TotalOrder};
use benu::pattern::queries;
use benu::plan::PlanBuilder;

#[test]
fn compressed_output_is_smaller_than_expanded() {
    // Clique-dense graph: q2 (tailed K4) compresses its pendant tail.
    let g = gen::chung_lu_power_law(gen::PowerLawConfig {
        n: 150,
        m: 1000,
        gamma: 2.4,
        clustering: 0.5,
        seed: 77,
    });
    let p = queries::q2();
    let plan = PlanBuilder::new(&p).compressed(true).best_plan();
    let compiled = CompiledPlan::compile(&plan);
    let source = InMemorySource::from_graph(&g);
    let order = TotalOrder::new(&g);
    let mut engine = LocalEngine::new(&compiled, &source, &order);
    let mut consumer = CountingConsumer::default();
    let m = engine.run_all_vertices(&mut consumer);

    assert!(m.matches > 0, "workload must produce matches");
    assert!(m.codes < m.matches, "codes must compress matches");
    let expanded_bytes = m.matches * (p.num_vertices() as u64) * 4;
    assert!(
        m.code_bytes < expanded_bytes,
        "compressed {} vs expanded {} bytes",
        m.code_bytes,
        expanded_bytes
    );
}

#[test]
fn compression_ratio_grows_with_non_cover_count() {
    // A star's cover is just its centre: n-1 vertices compress away,
    // giving the extreme compression VCBC is designed for.
    let g = gen::barabasi_albert(200, 4, 9);
    let star3 = queries::star(3); // cover = centre
    let plan = PlanBuilder::new(&star3).compressed(true).best_plan();
    let compiled = CompiledPlan::compile(&plan);
    let source = InMemorySource::from_graph(&g);
    let order = TotalOrder::new(&g);
    let mut engine = LocalEngine::new(&compiled, &source, &order);
    let mut consumer = CountingConsumer::default();
    let m = engine.run_all_vertices(&mut consumer);
    // One code per centre vertex with degree ≥ 3.
    let centres = g.vertices().filter(|&v| g.degree(v) >= 3).count() as u64;
    assert_eq!(m.codes, centres);
    // Matches = Σ C(d, 3) over centres (leaves are SE ⇒ fully chained).
    let expected: u64 = g
        .vertices()
        .filter(|&v| g.degree(v) >= 3)
        .map(|v| {
            let d = g.degree(v) as u64;
            d * (d - 1) * (d - 2) / 6
        })
        .sum();
    assert_eq!(m.matches, expected);
}

#[test]
fn every_catalogue_query_compresses_losslessly_on_dense_input() {
    let g = gen::chung_lu_power_law(gen::PowerLawConfig {
        n: 80,
        m: 420,
        gamma: 2.2,
        clustering: 0.5,
        seed: 123,
    });
    for (name, p) in queries::catalogue() {
        let plain = PlanBuilder::new(&p).best_plan();
        let compressed = PlanBuilder::new(&p).compressed(true).best_plan();
        assert_eq!(
            benu::engine::collect_embeddings(&plain, &g),
            benu::engine::collect_embeddings(&compressed, &g),
            "{name}: compressed expansion must reproduce the exact match set"
        );
    }
}

#[test]
fn clique_compression_matches_binomial_structure() {
    // K_n data graph, K_k pattern: count = C(n, k).
    let g = gen::complete(12);
    for k in 3..=5 {
        let p = queries::clique(k);
        let plan = PlanBuilder::new(&p).compressed(true).best_plan();
        let expected: u64 = {
            let mut c = 1u64;
            for i in 0..k as u64 {
                c = c * (12 - i) / (i + 1);
            }
            c
        };
        assert_eq!(
            benu::engine::count_embeddings(&plan, &g),
            expected,
            "K{k} in K12"
        );
    }
}
