//! Golden-file snapshots of compiled plans.
//!
//! The textual rendering of every evaluation query's best plan (plus the
//! paper's running example at its fixed order) is pinned under
//! `tests/golden/`. Any plan-compiler change that alters instruction
//! sequences shows up as a readable diff. Regenerate with
//! `BLESS=1 cargo test --test plan_snapshots`.

use benu::pattern::queries;
use benu::plan::PlanBuilder;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.plan.txt"))
}

fn check(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var("BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("golden file missing: run BLESS=1 cargo test --test plan_snapshots")
    });
    assert_eq!(
        rendered, expected,
        "plan for {name} changed; review and re-bless if intentional"
    );
}

#[test]
fn demo_pattern_plan_matches_golden() {
    let p = queries::demo_pattern();
    let plan = PlanBuilder::new(&p)
        .matching_order(vec![0, 2, 4, 1, 5, 3])
        .build();
    check("demo_fig3e", &format!("{plan}"));
    let compressed = PlanBuilder::new(&p)
        .matching_order(vec![0, 2, 4, 1, 5, 3])
        .compressed(true)
        .build();
    check("demo_fig3f", &format!("{compressed}"));
}

#[test]
fn evaluation_query_best_plans_match_golden() {
    // Best plans are deterministic: the search, the tie-breaks and the
    // estimator are all deterministic.
    for (name, p) in queries::evaluation_queries() {
        let plan = PlanBuilder::new(&p).compressed(true).best_plan();
        check(name, &format!("{plan}"));
    }
}

#[test]
fn motif_plans_match_golden() {
    for (name, p) in [
        ("triangle", queries::triangle()),
        ("clique4", queries::clique(4)),
        ("clique5", queries::clique(5)),
        ("chordal_square", queries::chordal_square()),
    ] {
        let plan = PlanBuilder::new(&p).best_plan();
        check(name, &format!("{plan}"));
    }
}
